#include <gtest/gtest.h>

#include "mmtag/core/baselines.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/core/link_budget.hpp"
#include "mmtag/core/metrics.hpp"

namespace mmtag::core {
namespace {

TEST(config, default_scenario_validates)
{
    EXPECT_NO_THROW(validate(default_scenario()));
}

TEST(config, inconsistent_rates_rejected)
{
    auto cfg = default_scenario();
    cfg.symbol_rate_hz = 3e6; // 250/3 not integer
    EXPECT_THROW(validate(cfg), std::invalid_argument);

    cfg = default_scenario();
    cfg.modulator.sample_rate_hz = 500e6;
    EXPECT_THROW(validate(cfg), std::invalid_argument);

    cfg = default_scenario();
    cfg.receiver.samples_per_symbol = 10;
    EXPECT_THROW(validate(cfg), std::invalid_argument);
}

TEST(config, channel_derivation_uses_reflector_model)
{
    auto cfg = default_scenario();
    cfg.tag_incidence_rad = 0.0;
    const auto broadside = make_channel_config(cfg);
    // 8-element Van Atta with ~6.5 dBi patches: N^2 * g^2 ~= 64 * 20 = 31 dB.
    EXPECT_NEAR(broadside.tag_backscatter_gain_db, 31.0, 2.5);

    cfg.tag_incidence_rad = deg_to_rad(30.0);
    const auto tilted = make_channel_config(cfg);
    // Van Atta keeps most of its gain off-axis (element roll-off only).
    EXPECT_GT(tilted.tag_backscatter_gain_db, broadside.tag_backscatter_gain_db - 8.0);

    cfg.reflector = reflector_kind::flat_plate;
    const auto plate = make_channel_config(cfg);
    EXPECT_LT(plate.tag_backscatter_gain_db, tilted.tag_backscatter_gain_db - 10.0);
}

TEST(link_budget, snr_decreases_40_db_per_decade)
{
    const link_budget budget(default_scenario());
    const auto near = budget.at(1.0);
    const auto far = budget.at(10.0);
    EXPECT_NEAR(near.snr_db - far.snr_db, 40.0, 0.5);
}

TEST(link_budget, positive_snr_at_short_range)
{
    const link_budget budget(default_scenario());
    EXPECT_GT(budget.at(2.0).snr_db, 20.0); // healthy margin at 2 m
}

TEST(link_budget, interference_dominates_signal)
{
    // Leakage and clutter are orders of magnitude above the tag return —
    // the reason the canceller exists.
    const link_budget budget(default_scenario());
    const auto entry = budget.at(3.0);
    EXPECT_GT(entry.static_interference_dbm, entry.received_at_ap_dbm + 30.0);
}

TEST(link_budget, max_range_consistent_with_at)
{
    const link_budget budget(default_scenario());
    const double range = budget.max_range_m(10.0);
    ASSERT_GT(range, 0.0);
    EXPECT_NEAR(budget.at(range).snr_db, 10.0, 0.2);
    EXPECT_LT(budget.at(range * 1.5).snr_db, 10.0);
}

TEST(link_budget, sweep_is_monotone)
{
    const link_budget budget(default_scenario());
    const auto entries = budget.sweep(0.5, 10.0, 20);
    ASSERT_EQ(entries.size(), 20u);
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_LT(entries[i].snr_db, entries[i - 1].snr_db);
    }
}

TEST(metrics, error_counter_bits)
{
    error_counter counter;
    const std::vector<std::uint8_t> sent{0xFF, 0x00};
    const std::vector<std::uint8_t> received{0xFD, 0x01}; // 2 bit errors
    counter.add_frame(sent, received, false);
    EXPECT_EQ(counter.bits(), 16u);
    EXPECT_EQ(counter.bit_errors(), 2u);
    EXPECT_DOUBLE_EQ(counter.ber(), 2.0 / 16.0);
    EXPECT_DOUBLE_EQ(counter.per(), 1.0);
}

TEST(metrics, error_counter_delivered)
{
    error_counter counter;
    const std::vector<std::uint8_t> frame{0xAB};
    counter.add_frame(frame, frame, true);
    counter.add_frame(frame, frame, true);
    EXPECT_DOUBLE_EQ(counter.per(), 0.0);
    EXPECT_DOUBLE_EQ(counter.ber(), 0.0);
}

TEST(metrics, lost_frame_counts_half_errors)
{
    error_counter counter;
    counter.add_lost_frame(10);
    EXPECT_EQ(counter.bits(), 80u);
    EXPECT_EQ(counter.bit_errors(), 40u);
}

TEST(metrics, per_from_ber)
{
    EXPECT_NEAR(per_from_ber(0.0, 1000), 0.0, 1e-15);
    EXPECT_NEAR(per_from_ber(1e-3, 1000), 1.0 - std::pow(0.999, 1000.0), 1e-12);
}

TEST(metrics, ber_confidence_shrinks_with_samples)
{
    error_counter small;
    error_counter large;
    const std::vector<std::uint8_t> ok{0x00};
    for (int i = 0; i < 10; ++i) small.add_frame(ok, ok, true);
    for (int i = 0; i < 10000; ++i) large.add_frame(ok, ok, true);
    EXPECT_GT(small.ber_confidence(), large.ber_confidence());
}

TEST(baselines, active_radio_dwarfs_tag_power)
{
    const active_radio_model radio{};
    EXPECT_GT(radio.total_power_w(), 0.3); // hundreds of mW
    // ~50x or more above a ~25 mW backscatter tag.
    EXPECT_GT(radio.total_power_w() / 25e-3, 10.0);
}

TEST(baselines, phased_array_tag_unaffordable)
{
    const phased_array_tag_model array{};
    // Even the array alone exceeds the whole tag budget.
    EXPECT_GT(array.total_power_w(), 100e-3);
}

TEST(baselines, literature_points_present)
{
    const auto points = literature_energy_points();
    ASSERT_GE(points.size(), 3u);
    bool has_anchor = false;
    for (const auto& p : points) {
        if (p.name.find("mmTag") != std::string::npos) {
            has_anchor = true;
            EXPECT_NEAR(p.energy_per_bit_j, 2.4e-9, 1e-12);
        }
    }
    EXPECT_TRUE(has_anchor);
}

} // namespace
} // namespace mmtag::core
