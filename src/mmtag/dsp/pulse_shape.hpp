// Root-raised-cosine pulse shaping and matched filtering.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Root-raised-cosine impulse response.
///
/// `samples_per_symbol` >= 2, `beta` (roll-off) in [0, 1], `span_symbols` is
/// the filter half-support in symbols on each side. Taps are normalized to
/// unit energy so that TX RRC + RX RRC gives unity gain at the symbol centers.
[[nodiscard]] rvec root_raised_cosine(std::size_t samples_per_symbol, double beta,
                                      std::size_t span_symbols);

/// Rectangular (boxcar) pulse of one symbol, unit amplitude — the shape a
/// switching backscatter tag actually produces.
[[nodiscard]] rvec rectangular_pulse(std::size_t samples_per_symbol);

/// Upsamples symbols by `samples_per_symbol` (impulse train) and shapes with
/// `pulse` taps.
[[nodiscard]] cvec shape_symbols(std::span<const cf64> symbols, std::span<const double> pulse,
                                 std::size_t samples_per_symbol);

/// Integrate-and-dump matched filter for rectangular pulses: averages each
/// symbol period starting at `offset` samples.
[[nodiscard]] cvec integrate_and_dump(std::span<const cf64> samples,
                                      std::size_t samples_per_symbol, std::size_t offset = 0);

} // namespace mmtag::dsp
