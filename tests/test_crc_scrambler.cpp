#include <gtest/gtest.h>

#include "mmtag/fec/crc.hpp"
#include "mmtag/fec/scrambler.hpp"
#include "mmtag/phy/bitio.hpp"

namespace mmtag::fec {
namespace {

std::vector<std::uint8_t> check_string()
{
    const std::string s = "123456789";
    return {s.begin(), s.end()};
}

TEST(crc, crc32_check_value)
{
    // The canonical CRC-32/ISO-HDLC check value.
    EXPECT_EQ(crc32(check_string()), 0xCBF43926u);
}

TEST(crc, crc16_ccitt_false_check_value)
{
    EXPECT_EQ(crc16_ccitt(check_string()), 0x29B1u);
}

TEST(crc, crc8_check_value)
{
    // CRC-8/SMBUS (poly 0x07, init 0) check value.
    EXPECT_EQ(crc8(check_string()), 0xF4u);
}

TEST(crc, empty_input)
{
    EXPECT_EQ(crc8({}), 0x00u);
    EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(crc, append_and_verify_round_trip)
{
    const auto payload = mmtag::phy::random_bytes(100, 1);
    const auto framed = append_crc32(payload);
    ASSERT_EQ(framed.size(), payload.size() + 4);
    std::vector<std::uint8_t> recovered;
    EXPECT_TRUE(check_and_strip_crc32(framed, recovered));
    EXPECT_EQ(recovered, payload);
}

TEST(crc, detects_every_single_byte_corruption)
{
    const auto payload = mmtag::phy::random_bytes(32, 2);
    const auto framed = append_crc32(payload);
    for (std::size_t i = 0; i < framed.size(); ++i) {
        auto corrupted = framed;
        corrupted[i] ^= 0x40;
        std::vector<std::uint8_t> out;
        EXPECT_FALSE(check_and_strip_crc32(corrupted, out)) << "byte " << i;
    }
}

TEST(crc, short_frame_rejected)
{
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(check_and_strip_crc32(std::vector<std::uint8_t>{1, 2, 3}, out));
}

TEST(scrambler, is_an_involution)
{
    const auto bits = mmtag::phy::random_bits(500, 3);
    scrambler forward(0x5D);
    scrambler backward(0x5D);
    EXPECT_EQ(backward.process(forward.process(bits)), bits);
}

TEST(scrambler, byte_level_involution)
{
    const auto bytes = mmtag::phy::random_bytes(64, 4);
    EXPECT_EQ(scramble_bytes(scramble_bytes(bytes)), bytes);
}

TEST(scrambler, whitens_constant_input)
{
    // An all-zero input must come out looking balanced (the whitening
    // sequence itself): between 35% and 65% ones over a long run.
    const std::vector<std::uint8_t> zeros(1000, 0);
    scrambler s;
    const auto out = s.process(zeros);
    std::size_t ones = 0;
    for (auto b : out) ones += b;
    EXPECT_GT(ones, 350u);
    EXPECT_LT(ones, 650u);
}

TEST(scrambler, breaks_long_runs)
{
    const std::vector<std::uint8_t> zeros(512, 0);
    scrambler s;
    const auto out = s.process(zeros);
    std::size_t longest = 0;
    std::size_t run = 1;
    for (std::size_t i = 1; i < out.size(); ++i) {
        run = out[i] == out[i - 1] ? run + 1 : 1;
        longest = std::max(longest, run);
    }
    EXPECT_LT(longest, 16u); // x^7 scrambler max run is bounded
}

TEST(scrambler, rejects_zero_seed)
{
    EXPECT_THROW(scrambler(0x80), std::invalid_argument); // 0 mod 2^7
}

TEST(scrambler, different_seeds_differ)
{
    const std::vector<std::uint8_t> zeros(64, 0);
    scrambler a(0x5D);
    scrambler b(0x31);
    EXPECT_NE(a.process(zeros), b.process(zeros));
}

} // namespace
} // namespace mmtag::fec
