// bench_util flag parsing: the strict numeric contract. strtoull would
// happily wrap "--jobs -1" to 2^64-1 and truncate "--seed 1e3" to 1; the
// parser must instead print one error line and exit(2).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../bench/bench_util.hpp"

namespace mmtag::bench {
namespace {

/// Runs bench_options::parse over a brace-list of flags (argv[0] included).
bench_options parse_flags(std::vector<std::string> flags)
{
    flags.insert(flags.begin(), "bench_test");
    std::vector<char*> argv;
    argv.reserve(flags.size());
    for (auto& flag : flags) argv.push_back(flag.data());
    return bench_options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(bench_options, parses_well_formed_flags)
{
    const auto opts = parse_flags(
        {"--csv", "--jobs", "4", "--seed", "99", "--json", "out.json",
         "--trials", "250", "--snr-db", "-2.5", "--verbose"});
    EXPECT_TRUE(opts.csv);
    EXPECT_EQ(opts.jobs, 4u);
    EXPECT_EQ(opts.seed, 99u);
    EXPECT_EQ(opts.json_path, "out.json");
    EXPECT_EQ(opts.extra_u64("trials", 1), 250u);
    EXPECT_DOUBLE_EQ(opts.extra_double("snr-db", 0.0), -2.5);
    EXPECT_EQ(opts.extra.at("verbose"), "");
    EXPECT_EQ(opts.extra_u64("absent", 7), 7u);
}

TEST(bench_options_death, negative_jobs_exits_with_code_2)
{
    EXPECT_EXIT(parse_flags({"--jobs", "-1"}), testing::ExitedWithCode(2),
                "--jobs expects a non-negative integer");
}

TEST(bench_options_death, scientific_notation_seed_exits)
{
    EXPECT_EXIT(parse_flags({"--seed", "1e3"}), testing::ExitedWithCode(2),
                "--seed expects a non-negative integer");
}

TEST(bench_options_death, trailing_junk_in_extra_u64_exits)
{
    const auto opts = parse_flags({"--trials", "12x"});
    EXPECT_EXIT((void)opts.extra_u64("trials", 1), testing::ExitedWithCode(2),
                "--trials expects a non-negative integer");
}

TEST(bench_options_death, overflowing_u64_exits)
{
    EXPECT_EXIT(parse_flags({"--seed", "99999999999999999999999999"}),
                testing::ExitedWithCode(2),
                "--seed expects a non-negative integer");
}

TEST(bench_options_death, partial_double_in_extra_exits)
{
    const auto opts = parse_flags({"--snr-db", "3.x"});
    EXPECT_EXIT((void)opts.extra_double("snr-db", 0.0), testing::ExitedWithCode(2),
                "--snr-db expects a number");
}

TEST(bench_options_death, missing_value_exits)
{
    EXPECT_EXIT(parse_flags({"--json"}), testing::ExitedWithCode(2),
                "--json needs a value");
}

TEST(bench_options_death, unexpected_positional_exits)
{
    EXPECT_EXIT(parse_flags({"stray"}), testing::ExitedWithCode(2),
                "unexpected argument 'stray'");
}

} // namespace
} // namespace mmtag::bench
