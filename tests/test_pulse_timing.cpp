#include <gtest/gtest.h>

#include <random>

#include "mmtag/dsp/pulse_shape.hpp"
#include "mmtag/dsp/timing_recovery.hpp"

namespace mmtag::dsp {
namespace {

TEST(pulse_shape, rrc_unit_energy)
{
    const rvec h = root_raised_cosine(8, 0.35, 6);
    double energy = 0.0;
    for (double t : h) energy += t * t;
    EXPECT_NEAR(energy, 1.0, 1e-12);
}

TEST(pulse_shape, rrc_symmetric)
{
    const rvec h = root_raised_cosine(4, 0.5, 5);
    for (std::size_t i = 0; i < h.size(); ++i) {
        EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
    }
}

TEST(pulse_shape, tx_rx_rrc_cascade_is_isi_free)
{
    // The raised cosine (RRC * RRC) must have (near-)zero crossings at all
    // nonzero symbol multiples.
    constexpr std::size_t sps = 8;
    const rvec h = root_raised_cosine(sps, 0.35, 8);
    rvec rc(2 * h.size() - 1, 0.0);
    for (std::size_t i = 0; i < h.size(); ++i) {
        for (std::size_t j = 0; j < h.size(); ++j) rc[i + j] += h[i] * h[j];
    }
    const std::size_t center = h.size() - 1;
    const double peak = rc[center];
    for (int k = 1; k <= 6; ++k) {
        EXPECT_LT(std::abs(rc[center + static_cast<std::size_t>(k) * sps]) / peak, 1e-3)
            << "symbol offset " << k;
    }
}

TEST(pulse_shape, rrc_validation)
{
    EXPECT_THROW((void)root_raised_cosine(1, 0.3, 4), std::invalid_argument);
    EXPECT_THROW((void)root_raised_cosine(8, 1.5, 4), std::invalid_argument);
    EXPECT_THROW((void)root_raised_cosine(8, 0.3, 0), std::invalid_argument);
}

TEST(pulse_shape, shape_symbols_rectangular)
{
    const cvec symbols{{1.0, 0.0}, {-1.0, 0.0}};
    const rvec pulse = rectangular_pulse(4);
    const cvec shaped = shape_symbols(symbols, pulse, 4);
    ASSERT_EQ(shaped.size(), 2 * 4 + 4 - 1);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(shaped[i].real(), 1.0);
    for (std::size_t i = 4; i < 8; ++i) EXPECT_DOUBLE_EQ(shaped[i].real(), -1.0);
}

TEST(pulse_shape, integrate_and_dump_recovers_symbols)
{
    const cvec symbols{{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
    const cvec shaped = shape_symbols(symbols, rectangular_pulse(10), 10);
    const cvec recovered = integrate_and_dump(std::span<const cf64>{shaped.data(), 40}, 10);
    ASSERT_EQ(recovered.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(std::abs(recovered[i] - symbols[i]), 0.0, 1e-12);
    }
}

TEST(pulse_shape, integrate_and_dump_offset)
{
    cvec samples(25, cf64{1.0, 0.0});
    const cvec out = integrate_and_dump(samples, 10, 3);
    EXPECT_EQ(out.size(), 2u); // samples 3..12 and 13..22
}

TEST(timing, best_symbol_offset_finds_shift)
{
    constexpr std::size_t sps = 10;
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<int> bit(0, 1);
    cvec symbols(64);
    for (auto& s : symbols) s = {bit(rng) ? 1.0 : -1.0, 0.0};
    const cvec shaped = shape_symbols(symbols, rectangular_pulse(sps), sps);

    for (std::size_t shift : {0u, 3u, 7u}) {
        cvec delayed(shift, cf64{});
        delayed.insert(delayed.end(), shaped.begin(), shaped.end());
        const std::size_t found = best_symbol_offset(delayed, sps);
        EXPECT_EQ(found, shift % sps);
    }
}

TEST(timing, gardner_tracks_static_offset)
{
    // NRZ (rectangular) BPSK — the waveform a switching tag produces — with a
    // 3-sample static timing offset. After convergence the loop must emit
    // symbol-spaced samples sitting on the flat tops (amplitude ~ 1), not on
    // the transitions.
    constexpr std::size_t sps = 8;
    std::mt19937_64 rng(9);
    std::uniform_int_distribution<int> bit(0, 1);
    cvec symbols(512);
    for (auto& s : symbols) s = {bit(rng) ? 1.0 : -1.0, 0.0};
    const cvec shaped = shape_symbols(symbols, rectangular_pulse(sps), sps);
    cvec delayed(3, cf64{});
    delayed.insert(delayed.end(), shaped.begin(), shaped.end());

    gardner_timing_recovery::config cfg;
    cfg.samples_per_symbol = sps;
    cfg.loop_bandwidth = 0.02;
    gardner_timing_recovery loop(cfg);
    const cvec recovered = loop.process(delayed);
    ASSERT_GT(recovered.size(), 300u);
    std::size_t consistent = 0;
    const std::size_t tail_start = recovered.size() - 200;
    for (std::size_t i = tail_start; i < recovered.size(); ++i) {
        if (std::abs(std::abs(recovered[i].real()) - 1.0) < 0.3) ++consistent;
    }
    EXPECT_GT(consistent, 180u);
    // One output per symbol (within loop slew).
    EXPECT_NEAR(static_cast<double>(recovered.size()), 512.0, 16.0);
}

TEST(timing, gardner_validation)
{
    gardner_timing_recovery::config cfg;
    cfg.samples_per_symbol = 1;
    EXPECT_THROW(gardner_timing_recovery{cfg}, std::invalid_argument);
}

} // namespace
} // namespace mmtag::dsp
