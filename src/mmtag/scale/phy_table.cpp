#include "mmtag/scale/phy_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "mmtag/core/link_budget.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/metrics.hpp"
#include "mmtag/runtime/json_io.hpp"
#include "mmtag/runtime/sweep_runner.hpp"

namespace mmtag::scale {

std::vector<double> phy_table_config::sinr_grid() const
{
    if (!(sinr_step_db > 0.0) || !(sinr_stop_db >= sinr_start_db)) {
        throw std::invalid_argument("phy_table: bad SINR grid");
    }
    std::vector<double> grid;
    // Index-based stepping keeps the grid exactly reproducible (no
    // accumulated floating-point drift between runs).
    const auto points = static_cast<std::size_t>(
                            std::floor((sinr_stop_db - sinr_start_db) / sinr_step_db +
                                       1e-9)) +
                        1;
    grid.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        grid.push_back(sinr_start_db + sinr_step_db * static_cast<double>(i));
    }
    return grid;
}

void enforce_non_increasing(std::vector<double>& values)
{
    // Pool-adjacent-violators for a non-increasing fit: whenever a value
    // rises, merge it with its left block and replace both with the block
    // mean, cascading left while the merged mean still violates.
    struct block {
        double sum;
        std::size_t count;
        [[nodiscard]] double mean() const { return sum / static_cast<double>(count); }
    };
    std::vector<block> blocks;
    blocks.reserve(values.size());
    for (const double v : values) {
        blocks.push_back({v, 1});
        while (blocks.size() > 1 &&
               blocks[blocks.size() - 2].mean() < blocks.back().mean()) {
            blocks[blocks.size() - 2].sum += blocks.back().sum;
            blocks[blocks.size() - 2].count += blocks.back().count;
            blocks.pop_back();
        }
    }
    std::size_t i = 0;
    for (const block& b : blocks) {
        for (std::size_t k = 0; k < b.count; ++k) values[i++] = b.mean();
    }
}

namespace {

constexpr const char* schema_name = "mmtag.phy_table/1";

std::uint64_t fnv1a64(const std::string& text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string hex16(std::uint64_t value)
{
    char buffer[20];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

/// The canonical parameter document: every field the measured curves depend
/// on, in fixed order. Its dump is what the fingerprint hashes, and what
/// load_or_generate compares byte-for-byte against the cached file.
runtime::json_value params_json(const phy_table_config& cfg)
{
    using runtime::json_value;
    const auto& s = cfg.scenario;
    auto scenario = json_value::object();
    scenario.set("tx_power_dbm", json_value::number(s.transmitter.tx_power_dbm));
    scenario.set("ap_tx_gain_dbi", json_value::number(s.ap_tx_gain_dbi));
    scenario.set("ap_rx_gain_dbi", json_value::number(s.ap_rx_gain_dbi));
    scenario.set("sample_rate_hz", json_value::number(s.sample_rate_hz));
    scenario.set("symbol_rate_hz", json_value::number(s.symbol_rate_hz));
    scenario.set("reflector",
                 json_value::string(s.reflector == core::reflector_kind::van_atta
                                        ? "van_atta"
                                        : "flat_plate"));
    scenario.set("elements", json_value::unsigned_integer(s.van_atta.element_count));
    scenario.set("line_loss_db", json_value::number(s.van_atta.line_loss_db));
    scenario.set("switch_loss_db",
                 json_value::number(s.modulator.rf_switch.insertion_loss_db));
    scenario.set("stub_loss_db", json_value::number(s.modulator.bank.stub_loss_db));
    scenario.set("tx_leakage_db", json_value::number(s.tx_leakage_db));
    scenario.set("clutter", json_value::unsigned_integer(s.clutter.size()));
    scenario.set("implementation_loss_db",
                 json_value::number(s.implementation_loss_db));
    scenario.set("rician_k_db", json_value::number(s.rician_k_db));
    scenario.set("rain_rate_mm_per_hr", json_value::number(s.rain_rate_mm_per_hr));

    auto ladder = json_value::array();
    for (const auto& option : ap::rate_table()) {
        auto entry = json_value::object();
        entry.set("modulation", json_value::string(phy::modulation_name(option.scheme)));
        entry.set("fec", json_value::string(phy::fec_mode_name(option.fec)));
        entry.set("required_snr_db", json_value::number(option.required_snr_db));
        ladder.push(std::move(entry));
    }

    auto params = json_value::object();
    params.set("scenario", std::move(scenario));
    params.set("sinr_start_db", json_value::number(cfg.sinr_start_db));
    params.set("sinr_stop_db", json_value::number(cfg.sinr_stop_db));
    params.set("sinr_step_db", json_value::number(cfg.sinr_step_db));
    params.set("frames_per_point", json_value::unsigned_integer(cfg.frames_per_point));
    params.set("payload_bytes", json_value::unsigned_integer(cfg.payload_bytes));
    params.set("seed", json_value::unsigned_integer(cfg.seed));
    params.set("rate_ladder", std::move(ladder));
    return params;
}

[[noreturn]] void reject(const std::string& what)
{
    throw simulation_error("phy_table: " + what);
}

} // namespace

std::string phy_table::fingerprint_of(const phy_table_config& cfg)
{
    return hex16(fnv1a64(params_json(cfg).dump()));
}

double phy_table::per(std::size_t mcs_index, double sinr_db) const
{
    if (mcs_index >= curves_.size()) reject("MCS index out of range");
    const curve& c = curves_[mcs_index];
    if (sinr_db <= c.sinr_db.front()) return c.per.front();
    if (sinr_db >= c.sinr_db.back()) return c.per.back();
    const auto it = std::upper_bound(c.sinr_db.begin(), c.sinr_db.end(), sinr_db);
    const auto hi = static_cast<std::size_t>(it - c.sinr_db.begin());
    const std::size_t lo = hi - 1;
    const double span = c.sinr_db[hi] - c.sinr_db[lo];
    const double t = span > 0.0 ? (sinr_db - c.sinr_db[lo]) / span : 0.0;
    return c.per[lo] + t * (c.per[hi] - c.per[lo]);
}

phy_table phy_table::generate(const phy_table_config& cfg, std::size_t jobs)
{
    const auto grid = cfg.sinr_grid();
    const auto& ladder = ap::rate_table();
    if (cfg.frames_per_point == 0) reject("frames_per_point must be >= 1");
    if (cfg.payload_bytes == 0) reject("payload_bytes must be >= 1");

    // Invert SINR -> distance once per grid point: the range at which the
    // analytic budget predicts exactly that SNR (the budget tracks the
    // sample-accurate simulator within fractions of a dB).
    const core::link_budget budget(cfg.scenario);
    std::vector<double> distances(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        distances[i] = budget.max_range_m(grid[i]);
        if (!(distances[i] > 0.0)) reject("SINR grid point unreachable");
    }

    // Chunked trials so the pool load-balances inside a grid point; chunk
    // sizes depend only on the config, so results stay jobs-invariant.
    constexpr std::size_t chunks = 4;
    runtime::sweep_options options;
    options.jobs = jobs;
    options.base_seed = cfg.seed;
    options.trials_per_point = std::min(chunks, cfg.frames_per_point);
    const std::size_t base_frames = cfg.frames_per_point / options.trials_per_point;
    const std::size_t extra_frames = cfg.frames_per_point % options.trials_per_point;

    const auto outcome = runtime::run_sweep<core::link_report>(
        options, ladder.size() * grid.size(),
        [&](std::size_t point, std::size_t chunk, std::uint64_t seed) {
            const std::size_t mcs = point / grid.size();
            const std::size_t sinr = point % grid.size();
            core::system_config scenario = cfg.scenario;
            scenario.distance_m = distances[sinr];
            scenario.seed = seed;
            core::link_simulator sim(scenario);
            sim.set_rate(ladder[mcs].scheme, ladder[mcs].fec);
            const std::size_t frames = base_frames + (chunk < extra_frames ? 1 : 0);
            return sim.run_trials(frames, cfg.payload_bytes);
        });

    phy_table table;
    table.cfg_ = cfg;
    table.fingerprint_ = fingerprint_of(cfg);
    table.curves_.resize(ladder.size());
    for (std::size_t mcs = 0; mcs < ladder.size(); ++mcs) {
        curve& c = table.curves_[mcs];
        c.scheme = ladder[mcs].scheme;
        c.fec = ladder[mcs].fec;
        c.sinr_db = grid;
        c.per.resize(grid.size());
        c.frames.resize(grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const auto& report = outcome.points[mcs * grid.size() + i].aggregate;
            c.per[i] = report.frames > 0 ? report.per : 1.0;
            c.frames[i] = report.frames;
        }
        enforce_non_increasing(c.per);
    }
    return table;
}

runtime::json_value phy_table::to_json() const
{
    using runtime::json_value;
    auto doc = runtime::schema_object(schema_name);
    doc.set("fingerprint", json_value::string(fingerprint_));
    doc.set("params", params_json(cfg_));
    auto curves = json_value::array();
    for (const curve& c : curves_) {
        auto entry = json_value::object();
        entry.set("modulation", json_value::string(phy::modulation_name(c.scheme)));
        entry.set("fec", json_value::string(phy::fec_mode_name(c.fec)));
        auto sinr = json_value::array();
        for (const double s : c.sinr_db) sinr.push(json_value::number(s));
        entry.set("sinr_db", std::move(sinr));
        auto per = json_value::array();
        for (const double p : c.per) per.push(json_value::number(p));
        entry.set("per", std::move(per));
        auto frames = json_value::array();
        for (const std::uint64_t f : c.frames) {
            frames.push(json_value::unsigned_integer(f));
        }
        entry.set("frames", std::move(frames));
        curves.push(std::move(entry));
    }
    doc.set("curves", std::move(curves));
    return doc;
}

phy_table phy_table::from_json(const runtime::json_value& doc,
                               const phy_table_config& cfg)
{
    using runtime::json_value;
    const json_value* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string() || schema->as_string() != schema_name) {
        reject(std::string("unsupported schema (want ") + schema_name + ")");
    }
    // The persisted params are only a digest of the scenario, so the caller
    // must supply the config it expects; the document is validated against
    // it byte-for-byte (which subsumes the fingerprint comparison).
    const json_value* fingerprint = doc.find("fingerprint");
    if (fingerprint == nullptr || !fingerprint->is_string()) reject("missing fingerprint");
    if (fingerprint->as_string() != fingerprint_of(cfg)) {
        reject("fingerprint does not match the requested build parameters");
    }
    const json_value* params = doc.find("params");
    if (params == nullptr || params->dump() != params_json(cfg).dump()) {
        reject("params do not match the requested build parameters");
    }
    const json_value* curves = doc.find("curves");
    if (curves == nullptr || !curves->is_array()) reject("missing curves");
    const auto& ladder = ap::rate_table();
    if (curves->size() != ladder.size()) reject("curve count != rate ladder size");

    phy_table table;
    table.cfg_ = cfg;
    table.fingerprint_ = fingerprint->as_string();
    table.curves_.resize(ladder.size());
    for (std::size_t mcs = 0; mcs < ladder.size(); ++mcs) {
        const json_value& entry = curves->at(mcs);
        curve& c = table.curves_[mcs];
        c.scheme = ladder[mcs].scheme;
        c.fec = ladder[mcs].fec;
        const json_value* modulation = entry.find("modulation");
        const json_value* fec = entry.find("fec");
        if (modulation == nullptr || !modulation->is_string() ||
            modulation->as_string() != phy::modulation_name(c.scheme) ||
            fec == nullptr || !fec->is_string() ||
            fec->as_string() != phy::fec_mode_name(c.fec)) {
            reject("curve order does not match the rate ladder");
        }
        const json_value* sinr = entry.find("sinr_db");
        const json_value* per = entry.find("per");
        const json_value* frames = entry.find("frames");
        if (sinr == nullptr || !sinr->is_array() || per == nullptr ||
            !per->is_array() || frames == nullptr || !frames->is_array() ||
            sinr->size() < 2 || sinr->size() != per->size() ||
            sinr->size() != frames->size()) {
            reject("malformed curve arrays");
        }
        for (std::size_t i = 0; i < sinr->size(); ++i) {
            c.sinr_db.push_back(sinr->at(i).as_number());
            c.per.push_back(per->at(i).as_number());
            c.frames.push_back(frames->at(i).as_uint());
            if (i > 0 && !(c.sinr_db[i] > c.sinr_db[i - 1])) {
                reject("SINR grid not strictly ascending");
            }
            if (!(c.per[i] >= 0.0 && c.per[i] <= 1.0)) reject("PER outside [0, 1]");
            if (i > 0 && c.per[i] > c.per[i - 1] + 1e-12) {
                reject("curve for " + phy::modulation_name(c.scheme) +
                       " is not monotone non-increasing in SINR");
            }
        }
    }
    return table;
}

phy_table::cache_result phy_table::load_or_generate(const phy_table_config& cfg,
                                                    std::size_t jobs,
                                                    const std::string& cache_dir)
{
    const std::string fingerprint = fingerprint_of(cfg);
    const std::string path = cache_dir + "/phy_table_" + fingerprint + ".json";

    std::string reason;
    if (const auto text = runtime::read_text_file(path)) {
        if (const auto doc = runtime::parse_json(*text)) {
            try {
                return {from_json(*doc, cfg), true, path};
            } catch (const simulation_error& error) {
                reason = std::string("invalid cache: ") + error.what();
            }
        } else {
            reason = "unparseable cache";
        }
    } else {
        reason = "no cached table";
    }

    const std::size_t total_frames =
        ap::rate_table().size() * cfg.sinr_grid().size() * cfg.frames_per_point;
    std::fprintf(stderr,
                 "phy_table: %s at %s — regenerating (%zu sample-accurate frames)\n",
                 reason.c_str(), path.c_str(), total_frames);
    phy_table table = generate(cfg, jobs);
    runtime::write_text_file(path, table.to_json().dump(2));
    return {std::move(table), false, path};
}

} // namespace mmtag::scale
