// Network supervisor scheduling (budget conservation, degraded-mode
// reallocation, rotation fairness, probe grants) and the chaos soak harness:
// every invariant checker fails loudly on a fabricated bad trace, and the
// full soak replays byte-identically for --jobs 1 vs --jobs 8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mmtag/net/network_supervisor.hpp"
#include "mmtag/net/soak_harness.hpp"
#include "mmtag/net/tag_session.hpp"
#include "mmtag/obs/metrics_registry.hpp"
#include "mmtag/runtime/thread_pool.hpp"

namespace {

using namespace mmtag;
using net::network_supervisor;
using net::round_plan;
using net::session_state;
using net::soak_config;
using net::soak_trace;
using net::supervisor_config;

std::size_t total_slots(const round_plan& plan)
{
    std::size_t slots = 0;
    for (const auto& share : plan.shares) slots += share.slots;
    return slots;
}

/// Fails every data frame for `tag` until its session leaves the plan.
void kill_tag(network_supervisor& sup, std::uint32_t tag)
{
    while (sup.session(tag).schedulable()) {
        auto plan = sup.plan_round();
        for (const auto& share : plan.shares) {
            for (std::size_t s = 0; s < share.slots; ++s) {
                if (!sup.session(share.tag_id).schedulable()) break;
                sup.record_data(share.tag_id, share.tag_id != tag);
            }
        }
    }
}

TEST(network_supervisor, conserves_the_slot_budget_when_tags_die)
{
    network_supervisor sup(supervisor_config{}, {0, 1, 2, 3, 4, 5});
    EXPECT_EQ(total_slots(sup.plan_round()), 6u) << "default budget = tag count";

    kill_tag(sup, 0);
    kill_tag(sup, 1);
    EXPECT_EQ(sup.healthy_count(), 4u);

    const auto plan = sup.plan_round();
    EXPECT_EQ(total_slots(plan), 6u)
        << "dead tags' slots are re-dealt to the healthy ones, not dropped";
    for (const auto& share : plan.shares) {
        EXPECT_NE(share.tag_id, 0u);
        EXPECT_NE(share.tag_id, 1u);
    }
}

TEST(network_supervisor, rotates_the_remainder_across_the_population)
{
    supervisor_config cfg;
    cfg.slot_budget = 3; // 5 tags, 3 slots: every round leaves 2 tags out
    network_supervisor sup(cfg, {0, 1, 2, 3, 4});

    std::vector<std::size_t> granted(5, 0);
    for (std::size_t round = 0; round < 10; ++round) {
        const auto plan = sup.plan_round();
        EXPECT_EQ(total_slots(plan), 3u);
        for (const auto& share : plan.shares) {
            granted[share.tag_id] += share.slots;
            sup.record_data(share.tag_id, true);
        }
    }
    // 30 slots over 5 tags with a rotating offset: everyone gets an equal cut.
    for (const std::size_t count : granted) EXPECT_EQ(count, 6u);
}

TEST(network_supervisor, marks_degraded_sessions_robust)
{
    network_supervisor sup(supervisor_config{}, {0, 1, 2});
    auto plan = sup.plan_round();
    sup.record_data(0, false);
    sup.record_data(1, true);
    sup.record_data(2, true);
    plan = sup.plan_round();
    sup.record_data(0, false); // second miss: 0 degrades
    sup.record_data(1, true);
    sup.record_data(2, true);

    plan = sup.plan_round();
    ASSERT_EQ(plan.robust.size(), 1u);
    EXPECT_EQ(plan.robust.front(), 0u);
    EXPECT_EQ(total_slots(plan), 3u) << "degraded sessions keep their slots";
}

TEST(network_supervisor, probes_and_readmits_a_quarantined_tag)
{
    obs::metrics_registry metrics;
    supervisor_config cfg;
    cfg.metrics = &metrics;
    network_supervisor sup(cfg, {0, 1});
    kill_tag(sup, 0);
    EXPECT_EQ(sup.session(0).state(), session_state::quarantined);

    bool readmitted = false;
    for (std::size_t round = 0; round < 10 && !readmitted; ++round) {
        const auto plan = sup.plan_round();
        for (const auto& share : plan.shares) sup.record_data(share.tag_id, true);
        for (const std::uint32_t tag : plan.probes) {
            sup.record_probe(tag, true);
            readmitted = sup.session(tag).state() == session_state::active;
        }
    }
    EXPECT_TRUE(readmitted);
    EXPECT_EQ(metrics.get_counter("net/readmitted").value(), 1u);
    EXPECT_GE(metrics.get_counter("net/probe_slots").value(), 2u)
        << "readmit_streak consecutive probe grants";
}

TEST(network_supervisor, discards_outcomes_after_a_mid_round_quarantine)
{
    // Tag 0 enters a round one failure short of quarantine and holds several
    // slots: the first outcome quarantines it, the rest must be discarded
    // (returning false), not throw.
    supervisor_config cfg;
    cfg.slot_budget = 6;
    network_supervisor sup(cfg, {0, 1});
    for (std::size_t round = 0; round < 2; ++round) {
        const auto plan = sup.plan_round();
        for (const auto& share : plan.shares) {
            for (std::size_t s = 0; s < share.slots; ++s) {
                if (share.tag_id != 0) {
                    EXPECT_TRUE(sup.record_data(share.tag_id, true));
                } else if (sup.session(0).schedulable()) {
                    sup.record_data(0, false);
                } else {
                    EXPECT_FALSE(sup.record_data(0, false));
                }
            }
        }
    }
    EXPECT_EQ(sup.session(0).state(), session_state::quarantined);
}

// ---------------------------------------------------------------------------
// Invariant checkers against fabricated traces: each must fail loudly.

soak_trace healthy_trace(std::size_t tags, std::size_t rounds)
{
    soak_trace trace;
    trace.tag_count = tags;
    trace.rounds.resize(rounds);
    for (std::size_t r = 0; r < rounds; ++r) {
        auto& rec = trace.rounds[r];
        rec.start_clock_s = static_cast<double>(r) * 1e-3;
        rec.states.assign(tags, 0);
        rec.scheduled.assign(tags, 1);
        rec.delivered.assign(tags, 1);
        rec.probed.assign(tags, 0);
        rec.probe_ok.assign(tags, 0);
    }
    return trace;
}

TEST(soak_invariants, legality_rejects_an_illegal_edge)
{
    auto trace = healthy_trace(2, 4);
    EXPECT_TRUE(net::check_transition_legality(trace).passed);

    trace.transitions.push_back(
        {0, {session_state::active, session_state::quarantined, 1}});
    const auto verdict = net::check_transition_legality(trace);
    EXPECT_FALSE(verdict.passed);
    EXPECT_NE(verdict.detail.find("illegal"), std::string::npos);
}

TEST(soak_invariants, legality_rejects_a_non_chronological_log)
{
    auto trace = healthy_trace(2, 4);
    trace.transitions.push_back(
        {1, {session_state::active, session_state::degraded, 3}});
    trace.transitions.push_back(
        {1, {session_state::degraded, session_state::active, 1}});
    EXPECT_FALSE(net::check_transition_legality(trace).passed);
}

TEST(soak_invariants, starvation_trips_after_a_dry_window)
{
    auto trace = healthy_trace(3, 8);
    for (std::size_t r = 2; r < 8; ++r) trace.rounds[r].scheduled[1] = 0;
    for (std::size_t r = 2; r < 8; ++r) trace.rounds[r].delivered[1] = 0;
    EXPECT_TRUE(net::check_no_starvation(trace, 7).passed);
    const auto verdict = net::check_no_starvation(trace, 6);
    EXPECT_FALSE(verdict.passed);
    EXPECT_NE(verdict.detail.find("tag 1"), std::string::npos);
}

TEST(soak_invariants, starvation_ignores_unschedulable_rounds)
{
    auto trace = healthy_trace(2, 8);
    for (std::size_t r = 0; r < 8; ++r) {
        trace.rounds[r].states[0] =
            static_cast<std::uint8_t>(session_state::quarantined);
        trace.rounds[r].scheduled[0] = 0;
        trace.rounds[r].delivered[0] = 0;
    }
    EXPECT_TRUE(net::check_no_starvation(trace, 3).passed)
        << "a quarantined tag is not starved, it is quarantined";
}

TEST(soak_invariants, conservation_rejects_overdelivery_and_bad_totals)
{
    auto trace = healthy_trace(2, 3);
    EXPECT_TRUE(net::check_frame_conservation(trace, {3, 3}).passed);
    EXPECT_FALSE(net::check_frame_conservation(trace, {3, 4}).passed)
        << "totals must equal the trace sum";

    trace.rounds[1].delivered[0] = 2; // 2 delivered from 1 slot
    EXPECT_FALSE(net::check_frame_conservation(trace, {4, 3}).passed);

    auto probe_trace = healthy_trace(2, 3);
    probe_trace.rounds[0].probe_ok[1] = 1; // outcome without a probe slot
    EXPECT_FALSE(net::check_frame_conservation(probe_trace, {3, 3}).passed);

    auto ragged = healthy_trace(2, 3);
    ragged.rounds[2].states.pop_back();
    EXPECT_FALSE(net::check_frame_conservation(ragged, {3, 3}).passed);
}

TEST(soak_invariants, bounded_recovery_rejects_a_stuck_quarantine)
{
    const net::session_config session; // max_readmit_rounds = 6
    auto trace = healthy_trace(2, 20);
    trace.last_fault_end_s = 2.5e-3; // first clean round: 3
    EXPECT_TRUE(net::check_bounded_recovery(trace, session, 2.0).passed);

    // Tag 1 still quarantined two rounds past the deadline (3 + 12 = 15).
    trace.rounds[17].states[1] =
        static_cast<std::uint8_t>(session_state::quarantined);
    const auto verdict = net::check_bounded_recovery(trace, session, 2.0);
    EXPECT_FALSE(verdict.passed);
    EXPECT_NE(verdict.detail.find("tag 1"), std::string::npos);
}

TEST(soak_invariants, bounded_recovery_fails_loudly_when_unobservable)
{
    const net::session_config session;
    auto trace = healthy_trace(2, 10);
    trace.last_fault_end_s = 8.5e-3; // deadline lands past the soak end
    const auto verdict = net::check_bounded_recovery(trace, session, 2.0);
    EXPECT_FALSE(verdict.passed);
    EXPECT_NE(verdict.detail.find("increase rounds"), std::string::npos)
        << "an unobservable invariant must not silently pass";
}

TEST(soak_invariants, graceful_degradation_compares_healthy_shares)
{
    EXPECT_TRUE(net::check_graceful_degradation({0, 50, 50}, {40, 50, 50}, 1, 0.9)
                    .passed);
    EXPECT_FALSE(net::check_graceful_degradation({0, 30, 50}, {40, 50, 50}, 1, 0.9)
                     .passed)
        << "healthy tags lost 20% of their fault-free delivery";
    EXPECT_FALSE(
        net::check_graceful_degradation({0, 0, 0}, {40, 0, 0}, 1, 0.9).passed)
        << "a dead reference arm is a broken scenario, not degradation";
    EXPECT_FALSE(
        net::check_graceful_degradation({0, 1}, {1, 1, 1}, 1, 0.9).passed);
}

// ---------------------------------------------------------------------------
// Full soak: replay determinism and a passing small configuration.

soak_config small_soak()
{
    soak_config cfg;
    cfg.tag_count = 4;
    cfg.faulted_count = 1;
    cfg.rounds = 36;
    cfg.payload_bytes = 8;
    cfg.trials = 1;
    cfg.seed = 5;
    cfg.fault_seed = 7;
    return cfg;
}

TEST(soak_harness, replays_byte_identically_for_any_job_count)
{
    const soak_config cfg = small_soak();
    runtime::thread_pool serial(1);
    runtime::thread_pool wide(8);
    obs::metrics_registry serial_metrics;
    obs::metrics_registry wide_metrics;

    const auto a = net::run_soak(cfg, serial, &serial_metrics);
    const auto b = net::run_soak(cfg, wide, &wide_metrics);

    EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
    EXPECT_EQ(a.all_passed(), b.all_passed());
    ASSERT_EQ(a.invariants.size(), b.invariants.size());
    for (std::size_t i = 0; i < a.invariants.size(); ++i) {
        EXPECT_EQ(a.invariants[i].passed, b.invariants[i].passed) << a.invariants[i].name;
        EXPECT_EQ(a.invariants[i].detail, b.invariants[i].detail);
    }
    EXPECT_EQ(serial_metrics.to_json_string(obs::metric_view::deterministic, 2),
              wide_metrics.to_json_string(obs::metric_view::deterministic, 2));
}

TEST(soak_harness, small_soak_passes_every_invariant)
{
    const soak_config cfg = small_soak();
    runtime::thread_pool pool(0);
    const auto report = net::run_soak(cfg, pool);

    for (const auto& inv : report.invariants) {
        EXPECT_TRUE(inv.passed) << inv.name << ": " << inv.detail;
    }
    EXPECT_TRUE(report.all_passed());
    EXPECT_GE(report.healthy_share_min_observed, cfg.healthy_share_min);

    // The faulted tag actually faults: it delivers less than its reference.
    EXPECT_LT(report.delivered_per_tag[0], report.reference_per_tag[0]);
    // And the fault-free reference arm is clean for every tag.
    for (std::size_t tag = 0; tag < cfg.tag_count; ++tag) {
        EXPECT_EQ(report.reference_per_tag[tag], cfg.rounds * cfg.trials);
    }
}

TEST(soak_harness, trial_arms_are_independent_tasks)
{
    // run_soak_trial is the task body; the reference arm must not see faults.
    const soak_config cfg = small_soak();
    const auto reference = net::run_soak_trial(cfg, 0, false, nullptr);
    EXPECT_EQ(reference.trace.last_fault_end_s, 0.0);
    EXPECT_TRUE(reference.trace.transitions.empty())
        << "a clean link never demotes a session";

    const auto faulted = net::run_soak_trial(cfg, 0, true, nullptr);
    EXPECT_GT(faulted.trace.last_fault_end_s, 0.0);
    EXPECT_FALSE(faulted.trace.transitions.empty());
}

TEST(soak_harness, rejects_degenerate_configs)
{
    runtime::thread_pool pool(1);
    soak_config cfg = small_soak();
    cfg.trials = 0;
    EXPECT_THROW((void)net::run_soak(cfg, pool), std::invalid_argument);
    cfg = small_soak();
    cfg.rounds = 0;
    EXPECT_THROW((void)net::run_soak(cfg, pool), std::invalid_argument);
    cfg = small_soak();
    cfg.faulted_count = cfg.tag_count + 1;
    EXPECT_THROW((void)net::run_soak(cfg, pool), std::invalid_argument);
}

} // namespace
