#include "mmtag/dsp/estimators.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::dsp {

double mean_power(std::span<const cf64> samples)
{
    if (samples.empty()) throw std::invalid_argument("mean_power: empty input");
    double acc = 0.0;
    for (cf64 x : samples) acc += std::norm(x);
    return acc / static_cast<double>(samples.size());
}

double rms(std::span<const cf64> samples)
{
    return std::sqrt(mean_power(samples));
}

double papr_db(std::span<const cf64> samples)
{
    const double average = mean_power(samples);
    double peak = 0.0;
    for (cf64 x : samples) peak = std::max(peak, std::norm(x));
    if (average <= 0.0) throw std::invalid_argument("papr_db: zero-power input");
    return to_db(peak / average);
}

double evm_rms(std::span<const cf64> received, std::span<const cf64> reference)
{
    if (received.size() != reference.size() || received.empty()) {
        throw std::invalid_argument("evm_rms: size mismatch or empty input");
    }
    double error_power = 0.0;
    double reference_power = 0.0;
    for (std::size_t i = 0; i < received.size(); ++i) {
        error_power += std::norm(received[i] - reference[i]);
        reference_power += std::norm(reference[i]);
    }
    if (reference_power <= 0.0) throw std::invalid_argument("evm_rms: zero-power reference");
    return std::sqrt(error_power / reference_power);
}

double evm_db(std::span<const cf64> received, std::span<const cf64> reference)
{
    return 20.0 * std::log10(evm_rms(received, reference));
}

double snr_estimate_db(std::span<const cf64> received, std::span<const cf64> reference)
{
    if (received.size() != reference.size() || received.empty()) {
        throw std::invalid_argument("snr_estimate_db: size mismatch or empty input");
    }
    // Least-squares complex gain g = <r, s> / <s, s>.
    cf64 cross{};
    double reference_power = 0.0;
    for (std::size_t i = 0; i < received.size(); ++i) {
        cross += received[i] * std::conj(reference[i]);
        reference_power += std::norm(reference[i]);
    }
    if (reference_power <= 0.0) {
        throw std::invalid_argument("snr_estimate_db: zero-power reference");
    }
    const cf64 gain = cross / reference_power;
    double signal_power = 0.0;
    double noise_power = 0.0;
    for (std::size_t i = 0; i < received.size(); ++i) {
        const cf64 fitted = gain * reference[i];
        signal_power += std::norm(fitted);
        noise_power += std::norm(received[i] - fitted);
    }
    if (noise_power <= 0.0) return 200.0; // effectively noiseless
    return to_db(signal_power / noise_power);
}

double snr_m2m4_db(std::span<const cf64> samples)
{
    if (samples.size() < 8) throw std::invalid_argument("snr_m2m4_db: too few samples");
    double m2 = 0.0;
    double m4 = 0.0;
    for (cf64 x : samples) {
        const double p = std::norm(x);
        m2 += p;
        m4 += p * p;
    }
    m2 /= static_cast<double>(samples.size());
    m4 /= static_cast<double>(samples.size());
    // For a constant-modulus signal in complex AWGN:
    //   m2 = S + N,  m4 = S^2 + 4 S N + 2 N^2  =>  S = sqrt(2 m2^2 - m4).
    const double radicand = 2.0 * m2 * m2 - m4;
    if (radicand <= 0.0) return -50.0; // noise-dominated; report a floor
    const double signal = std::sqrt(radicand);
    const double noise = m2 - signal;
    if (noise <= 0.0) return 200.0;
    return to_db(signal / noise);
}

void running_stats::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double running_stats::mean() const
{
    if (count_ == 0) throw std::logic_error("running_stats: no samples");
    return mean_;
}

double running_stats::variance() const
{
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::standard_deviation() const
{
    return std::sqrt(variance());
}

double running_stats::minimum() const
{
    if (count_ == 0) throw std::logic_error("running_stats: no samples");
    return min_;
}

double running_stats::maximum() const
{
    if (count_ == 0) throw std::logic_error("running_stats: no samples");
    return max_;
}

void running_stats::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double percentile(std::span<const double> values, double p)
{
    if (values.empty()) throw std::invalid_argument("percentile: empty input");
    if (!(p >= 0.0 && p <= 100.0)) throw std::invalid_argument("percentile: p outside [0, 100]");
    rvec sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lower = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lower);
    if (lower + 1 >= sorted.size()) return sorted.back();
    return sorted[lower] * (1.0 - frac) + sorted[lower + 1] * frac;
}

} // namespace mmtag::dsp
