#include "mmtag/ap/canceller.hpp"

#include <algorithm>
#include <stdexcept>

#include "mmtag/dsp/estimators.hpp"

namespace mmtag::ap {

self_interference_canceller::self_interference_canceller()
    : self_interference_canceller(config{})
{
}

self_interference_canceller::self_interference_canceller(const config& cfg)
    : cfg_(cfg), notch_(cfg.notch_pole)
{
    if (!(cfg.training_fraction > 0.0 && cfg.training_fraction < 1.0)) {
        throw std::invalid_argument("canceller: training_fraction must be in (0, 1)");
    }
    if (!(cfg.training_skip >= 0.0 && cfg.training_skip + cfg.training_fraction < 1.0)) {
        throw std::invalid_argument("canceller: training skip+fraction must fit in the window");
    }
    if (!(cfg.tail_fraction > 0.0 && cfg.tail_fraction < 0.5)) {
        throw std::invalid_argument("canceller: tail_fraction must be in (0, 0.5)");
    }
}

cvec self_interference_canceller::process(std::span<const cf64> baseband)
{
    if (baseband.empty()) return {};
    const double input_power = dsp::mean_power(baseband);

    cvec out;
    switch (cfg_.mode) {
    case cancellation_mode::off:
        out.assign(baseband.begin(), baseband.end());
        break;
    case cancellation_mode::dc_notch:
        out = notch_.process(baseband);
        break;
    case cancellation_mode::mean_subtract:
        out = dsp::remove_mean(baseband);
        out = notch_.process(out);
        break;
    case cancellation_mode::background_subtract: {
        const std::size_t skip = static_cast<std::size_t>(
            cfg_.training_skip * static_cast<double>(baseband.size()));
        const std::size_t training = std::max<std::size_t>(
            1, static_cast<std::size_t>(cfg_.training_fraction *
                                        static_cast<double>(baseband.size())));
        const std::size_t head_end = std::min(skip + training, baseband.size());
        cf64 head{};
        for (std::size_t i = skip; i < head_end; ++i) head += baseband[i];
        head /= static_cast<double>(head_end - skip);

        // The tag is also quiet at the end of the capture (trailing guard),
        // so a second estimate there lets the canceller track slow drift of
        // the statics (TX phase noise on delayed clutter) linearly instead
        // of leaving it as residual.
        const std::size_t tail_len = std::max<std::size_t>(
            1, std::min(static_cast<std::size_t>(cfg_.tail_fraction *
                                                 static_cast<double>(baseband.size())),
                        baseband.size()));
        const std::size_t tail_start = baseband.size() - tail_len;
        cf64 tail{};
        for (std::size_t i = tail_start; i < baseband.size(); ++i) tail += baseband[i];
        tail /= static_cast<double>(tail_len);

        const double head_center = 0.5 * static_cast<double>(skip + head_end);
        const double tail_center =
            0.5 * static_cast<double>(tail_start + baseband.size());
        const double spread = std::max(tail_center - head_center, 1.0);
        background_ = head;
        out.reserve(baseband.size());
        for (std::size_t i = 0; i < baseband.size(); ++i) {
            const double t = (static_cast<double>(i) - head_center) / spread;
            const cf64 estimate = head + (tail - head) * t;
            out.push_back(baseband[i] - estimate);
        }
        break;
    }
    }

    const double output_power = dsp::mean_power(out);
    last_suppression_db_ = (input_power > 0.0 && output_power > 0.0)
                               ? to_db(output_power / input_power)
                               : 0.0;
    return out;
}

void self_interference_canceller::reset()
{
    notch_.reset();
    last_suppression_db_ = 0.0;
    background_ = cf64{};
}

} // namespace mmtag::ap
