// Glue between the AP link supervisor and the sample-accurate single-link
// simulator: offers framed traffic through the supervisor's plan
// (backoff, MCS fallback, watchdog reacquisition) while an attached fault
// injector perturbs the RF. The baseline variant runs the same traffic with
// supervision disabled — plain fixed-rate stop-and-wait ARQ — which is the
// "supervisor off" arm of the R21 experiment.
#pragma once

#include <cstddef>

#include "mmtag/ap/link_supervisor.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/fault/fault_injector.hpp"

namespace mmtag::core {

/// Runs `frames` supervised frame exchanges over `link`, with `faults`
/// injected per frame window (nullptr = fault-free). Reacquisition advances
/// the link clock by cfg.reacquisition_time_s and re-locks the LO (clearing
/// pending LO-step faults). The link's configured (modulation, FEC) pair is
/// the supervisor's nominal rate.
[[nodiscard]] ap::supervised_report run_supervised_link(link_simulator& link,
                                                        fault::fault_injector* faults,
                                                        const ap::supervisor_config& cfg,
                                                        std::size_t frames,
                                                        std::size_t payload_bytes);

/// Supervisor-off baseline: the same traffic and fault exposure, but plain
/// stop-and-wait ARQ at the fixed configured rate — no backoff, no MCS
/// fallback, no watchdog, so a persistent fault is a goodput cliff.
[[nodiscard]] ap::supervised_report run_baseline_link(link_simulator& link,
                                                      fault::fault_injector* faults,
                                                      std::size_t max_retries,
                                                      std::size_t frames,
                                                      std::size_t payload_bytes);

} // namespace mmtag::core
