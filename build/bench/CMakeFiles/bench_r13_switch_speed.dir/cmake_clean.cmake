file(REMOVE_RECURSE
  "CMakeFiles/bench_r13_switch_speed.dir/bench_r13_switch_speed.cpp.o"
  "CMakeFiles/bench_r13_switch_speed.dir/bench_r13_switch_speed.cpp.o.d"
  "bench_r13_switch_speed"
  "bench_r13_switch_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r13_switch_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
