// M-PSK symbol mapping. PSK is the natural constellation for backscatter
// load modulation: each termination stub rotates the reflected carrier by a
// fixed phase at (ideally) constant magnitude, so the tag's "DAC" is a
// switch choosing among M phases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mmtag/common.hpp"

namespace mmtag::phy {

enum class modulation {
    bpsk,  // 1 bit/symbol
    qpsk,  // 2
    psk8,  // 3
    psk16, // 4
};

[[nodiscard]] std::size_t bits_per_symbol(modulation scheme);
[[nodiscard]] std::size_t constellation_size(modulation scheme);
[[nodiscard]] std::string modulation_name(modulation scheme);

/// Unit-energy constellation points in Gray-code order: point index i is the
/// symbol whose Gray-decoded bits equal i.
[[nodiscard]] cvec constellation(modulation scheme);

/// Maps a bit vector (0/1, length padded to a symbol boundary with zeros)
/// onto constellation symbols.
[[nodiscard]] cvec map_bits(std::span<const std::uint8_t> bits, modulation scheme);

/// Hard demapping: nearest constellation point, Gray decoded back to bits.
[[nodiscard]] std::vector<std::uint8_t> demap_hard(std::span<const cf64> symbols,
                                                   modulation scheme);

/// Soft demapping: per-bit LLR-like values (positive = bit 0), max-log
/// approximation with noise variance `noise_variance` (>0).
[[nodiscard]] std::vector<double> demap_soft(std::span<const cf64> symbols, modulation scheme,
                                             double noise_variance);

/// Theoretical AWGN bit error rate at `ebn0_db` for the scheme (exact for
/// BPSK/QPSK, tight union bound for 8/16-PSK with Gray coding).
[[nodiscard]] double theoretical_ber(modulation scheme, double ebn0_db);

/// Gaussian tail function Q(x).
[[nodiscard]] double q_function(double x);

} // namespace mmtag::phy
