# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_r03_snr_vs_distance.
