#include "mmtag/dsp/iir.hpp"

#include <stdexcept>

namespace mmtag::dsp {

namespace {

void check_norm_frequency(double f)
{
    if (!(f > 0.0 && f < 0.5)) {
        throw std::invalid_argument("biquad design: normalized frequency must be in (0, 0.5)");
    }
}

} // namespace

biquad_coefficients design_biquad_lowpass(double cutoff_norm, double q)
{
    check_norm_frequency(cutoff_norm);
    if (q <= 0.0) throw std::invalid_argument("biquad design: q must be > 0");
    const double w0 = two_pi * cutoff_norm;
    const double alpha = std::sin(w0) / (2.0 * q);
    const double cw = std::cos(w0);
    const double a0 = 1.0 + alpha;
    biquad_coefficients c;
    c.b0 = (1.0 - cw) / 2.0 / a0;
    c.b1 = (1.0 - cw) / a0;
    c.b2 = (1.0 - cw) / 2.0 / a0;
    c.a1 = -2.0 * cw / a0;
    c.a2 = (1.0 - alpha) / a0;
    return c;
}

biquad_coefficients design_biquad_highpass(double cutoff_norm, double q)
{
    check_norm_frequency(cutoff_norm);
    if (q <= 0.0) throw std::invalid_argument("biquad design: q must be > 0");
    const double w0 = two_pi * cutoff_norm;
    const double alpha = std::sin(w0) / (2.0 * q);
    const double cw = std::cos(w0);
    const double a0 = 1.0 + alpha;
    biquad_coefficients c;
    c.b0 = (1.0 + cw) / 2.0 / a0;
    c.b1 = -(1.0 + cw) / a0;
    c.b2 = (1.0 + cw) / 2.0 / a0;
    c.a1 = -2.0 * cw / a0;
    c.a2 = (1.0 - alpha) / a0;
    return c;
}

biquad_coefficients design_biquad_notch(double center_norm, double q)
{
    check_norm_frequency(center_norm);
    if (q <= 0.0) throw std::invalid_argument("biquad design: q must be > 0");
    const double w0 = two_pi * center_norm;
    const double alpha = std::sin(w0) / (2.0 * q);
    const double cw = std::cos(w0);
    const double a0 = 1.0 + alpha;
    biquad_coefficients c;
    c.b0 = 1.0 / a0;
    c.b1 = -2.0 * cw / a0;
    c.b2 = 1.0 / a0;
    c.a1 = -2.0 * cw / a0;
    c.a2 = (1.0 - alpha) / a0;
    return c;
}

biquad::biquad(biquad_coefficients coefficients) : c_(coefficients) {}

cf64 biquad::process(cf64 input)
{
    const cf64 output = c_.b0 * input + s1_;
    s1_ = c_.b1 * input - c_.a1 * output + s2_;
    s2_ = c_.b2 * input - c_.a2 * output;
    return output;
}

void biquad::reset()
{
    s1_ = cf64{};
    s2_ = cf64{};
}

biquad_cascade::biquad_cascade(std::vector<biquad_coefficients> sections)
{
    if (sections.empty()) throw std::invalid_argument("biquad_cascade: no sections");
    sections_.reserve(sections.size());
    for (const auto& c : sections) sections_.emplace_back(c);
}

cf64 biquad_cascade::process(cf64 input)
{
    cf64 x = input;
    for (auto& section : sections_) x = section.process(x);
    return x;
}

cvec biquad_cascade::process(std::span<const cf64> input)
{
    cvec out;
    out.reserve(input.size());
    for (cf64 x : input) out.push_back(process(x));
    return out;
}

void biquad_cascade::reset()
{
    for (auto& section : sections_) section.reset();
}

biquad_cascade design_butterworth_lowpass(double cutoff_norm, std::size_t order)
{
    check_norm_frequency(cutoff_norm);
    if (order == 0 || order % 2 != 0) {
        throw std::invalid_argument("design_butterworth_lowpass: order must be even and >= 2");
    }
    // Each section realizes a conjugate pole pair of the Butterworth circle;
    // Q_k = 1 / (2 sin((2k+1) pi / (2 order))).
    std::vector<biquad_coefficients> sections;
    const std::size_t pairs = order / 2;
    for (std::size_t k = 0; k < pairs; ++k) {
        const double angle = (2.0 * static_cast<double>(k) + 1.0) * pi / (2.0 * static_cast<double>(order));
        const double q = 1.0 / (2.0 * std::sin(angle));
        sections.push_back(design_biquad_lowpass(cutoff_norm, q));
    }
    return biquad_cascade{std::move(sections)};
}

} // namespace mmtag::dsp
