// R19 — Body blockage and ARQ recovery (extension).
// A person intermittently walks through the AP-tag path; the two-way link
// takes the shadow loss twice. Frames are launched continuously; each frame
// sees the blockage amplitude at its start (frames are ~100 us, shadow
// transitions are ~ms). Expected shape: PER tracks the blockage duty cycle
// once the two-way shadow exceeds the link margin; stop-and-wait ARQ restores
// delivery at the cost of duty-cycle-dependent retransmissions.
#include "bench_util.hpp"
#include "mmtag/ap/receiver.hpp"
#include "mmtag/ap/transmitter.hpp"
#include "mmtag/channel/backscatter_channel.hpp"
#include "mmtag/channel/blockage.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/mac/arq.hpp"
#include "mmtag/phy/bitio.hpp"
#include "mmtag/tag/modulator.hpp"

using namespace mmtag;

namespace {

/// One frame exchange with the tag path scaled by `amplitude` (two-way).
bool run_frame(const core::system_config& cfg, channel::backscatter_channel& chan,
               tag::backscatter_modulator& modulator, ap::ap_transmitter& tx,
               ap::ap_receiver& rx, double amplitude, std::uint64_t seed)
{
    const auto payload = phy::random_bytes(24, seed);
    auto frame = modulator.modulate(payload);
    const double two_way = amplitude * amplitude;
    for (auto& g : frame.gamma) g *= two_way;

    const std::size_t sps = modulator.samples_per_symbol();
    const std::size_t base = frame.gamma.size() + 8 * sps;
    const double training = cfg.receiver.canceller.training_fraction +
                            cfg.receiver.canceller.training_skip;
    const auto lead = static_cast<std::size_t>(2.0 * training * base) + sps;
    cvec gamma(lead, frame.gamma.front());
    gamma.insert(gamma.end(), frame.gamma.begin(), frame.gamma.end());

    const auto query = tx.generate(base + lead);
    const cvec antenna = chan.ap_received(query.rf, gamma);
    const auto rxed = rx.receive(antenna, query.lo);
    return rxed.frame_found && rxed.crc_ok && rxed.payload == payload;
}

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    const bool csv = opts.csv;
    bench::banner("R19", "frame loss under body blockage, with ARQ recovery", csv);

    auto cfg = bench::bench_scenario();
    cfg.distance_m = 4.0; // ~21 dB of margin over QPSK-1/2

    bench::table out({"shadow_dB", "blocked_duty", "per", "arq_delivery",
                      "arq_tx_per_frame"},
                     csv);
    for (double loss_db : {6.0, 12.0, 20.0}) {
        for (double duty : {0.1, 0.3}) {
            channel::blockage_process::config blk;
            blk.sample_rate_hz = 1e4; // frame-scale trace
            blk.mean_blocked_s = 20e-3;
            blk.mean_clear_s = blk.mean_blocked_s * (1.0 - duty) / duty;
            blk.blockage_loss_db = loss_db;
            blk.transition_s = 2e-3;
            channel::blockage_process shadow(blk, 23);

            channel::backscatter_channel chan(core::make_channel_config(cfg));
            tag::backscatter_modulator modulator(cfg.modulator);
            ap::ap_transmitter tx(cfg.transmitter, 29);
            ap::ap_receiver rx(cfg.receiver, 31);

            constexpr std::size_t frames = 60;
            std::size_t delivered = 0;
            for (std::size_t f = 0; f < frames; ++f) {
                // Advance the shadow ~2 ms between frames (20 trace steps).
                double amplitude = 1.0;
                for (int k = 0; k < 20; ++k) amplitude = shadow.step();
                if (run_frame(cfg, chan, modulator, tx, rx, amplitude, 700 + f)) {
                    ++delivered;
                }
            }
            const double per = 1.0 - static_cast<double>(delivered) / frames;
            const mac::stop_and_wait_arq arq{mac::arq_config{}};
            const auto arq_stats = arq.run(400, std::max(1.0 - per, 0.02), 37);
            out.add_row({bench::fmt("%.0f", loss_db), bench::fmt("%.1f", duty),
                         bench::fmt("%.2f", per),
                         bench::fmt("%.3f", arq_stats.delivery_ratio()),
                         bench::fmt("%.2f",
                                    static_cast<double>(arq_stats.transmissions) /
                                        static_cast<double>(arq_stats.frames_offered))});
        }
    }
    out.print();
    return 0;
}
