// AP transmitter: generates the CW query carrier through the PA. The same
// LO samples are exposed so the receiver can downconvert self-coherently —
// the design choice that makes unmodulated interference land at DC.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"
#include "mmtag/rf/amplifier.hpp"
#include "mmtag/rf/oscillator.hpp"

namespace mmtag::ap {

class ap_transmitter {
public:
    struct config {
        double tx_power_dbm = 27.0;       ///< radiated power after the PA
        double sample_rate_hz = 2e9;
        double lo_linewidth_hz = 1e3;     ///< synthesizer phase-noise linewidth
        double lo_frequency_offset_hz = 0.0;
        rf::power_amplifier::config pa{};
    };

    ap_transmitter(const config& cfg, std::uint64_t seed);

    [[nodiscard]] const config& parameters() const { return cfg_; }
    [[nodiscard]] double tx_power_w() const { return tx_power_w_; }

    struct query {
        cvec rf; ///< transmitted complex envelope (volts, 1-ohm reference)
        cvec lo; ///< unit-amplitude LO stream for self-coherent RX
    };

    /// Generates `count` samples of CW query.
    [[nodiscard]] query generate(std::size_t count);

    /// Generates an amplitude-modulated query (the PIE command channel):
    /// the carrier is scaled by `envelope` (values in [0, 1]) before the PA.
    [[nodiscard]] query generate_modulated(std::span<const double> envelope);

private:
    config cfg_;
    rf::oscillator lo_;
    rf::power_amplifier pa_;
    double tx_power_w_;
    double drive_amplitude_;
};

} // namespace mmtag::ap
