file(REMOVE_RECURSE
  "CMakeFiles/bench_r17_fading.dir/bench_r17_fading.cpp.o"
  "CMakeFiles/bench_r17_fading.dir/bench_r17_fading.cpp.o.d"
  "bench_r17_fading"
  "bench_r17_fading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r17_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
