// Single-pole DC removal filter — the first stage of self-interference
// suppression at the AP (unmodulated leakage lands exactly at DC after
// self-coherent downconversion).
#pragma once

#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// y[n] = x[n] - x[n-1] + r * y[n-1]; `r` close to 1 gives a narrow notch at
/// DC with near-unity passband gain.
class dc_blocker {
public:
    explicit dc_blocker(double pole = 0.999);

    [[nodiscard]] cf64 process(cf64 input);
    [[nodiscard]] cvec process(std::span<const cf64> input);
    void reset();

    /// Magnitude response at a normalized frequency (cycles/sample).
    [[nodiscard]] double magnitude_response(double frequency_norm) const;

private:
    double pole_;
    cf64 previous_input_{};
    cf64 previous_output_{};
};

/// Subtracts the buffer mean (block DC estimate) — the non-streaming variant.
[[nodiscard]] cvec remove_mean(std::span<const cf64> input);

} // namespace mmtag::dsp
