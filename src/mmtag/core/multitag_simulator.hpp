// Sample-accurate multi-tag simulation: several tags' reflections superposed
// on one AP capture. Exercises what the slot-level MAC models abstract away —
// actual collisions, the capture effect between unequal links, and clean
// slotted separation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mmtag/ap/receiver.hpp"
#include "mmtag/ap/transmitter.hpp"
#include "mmtag/channel/backscatter_channel.hpp"
#include "mmtag/core/config.hpp"
#include "mmtag/core/network.hpp"
#include "mmtag/tag/modulator.hpp"

namespace mmtag::fault {
class fault_injector;
}

namespace mmtag::obs {
class metrics_registry;
}

namespace mmtag::core {

/// Per-burst MCS override: the network supervisor drops a degraded session
/// to a robust (modulation, FEC) pair without touching the other tags in
/// the capture. The frame header self-describes scheme and FEC, so the
/// receiver decodes an overridden burst with no configuration change.
struct burst_mcs {
    phy::modulation scheme = phy::modulation::bpsk;
    phy::fec_mode fec = phy::fec_mode::conv_half;
};

/// One tag's transmission in the shared capture window.
struct tag_burst {
    std::size_t tag_index = 0;            ///< into the constructor's tag list
    std::vector<std::uint8_t> payload;
    double start_s = 0.0;                 ///< burst start within the capture
    std::optional<burst_mcs> mcs;         ///< robust-mode override; nullopt = base MCS
};

struct burst_outcome {
    bool frame_found = false;
    bool delivered = false;               ///< CRC passed and payload matches
    double snr_db = -100.0;
    std::vector<std::uint8_t> payload;
};

class multitag_simulator {
public:
    multitag_simulator(const system_config& base, std::vector<tag_descriptor> tags);

    [[nodiscard]] std::size_t tag_count() const { return channels_.size(); }

    /// Attaches a fault injector consulted once per capture (shared faults:
    /// carrier dropout, LO step, interferer) and once per burst (per-tag
    /// faults: blockage, brownout). Not owned; nullptr detaches.
    void attach_fault_injector(fault::fault_injector* injector) { faults_ = injector; }

    /// Attaches one injector per tag, consulted for each tag's own burst on
    /// top of the shared injector (per-tag faults: blockage, brownout). The
    /// vector must be empty (detach) or hold tag_count() entries; individual
    /// entries may be nullptr for healthy tags. Not owned.
    void attach_tag_fault_injectors(std::vector<fault::fault_injector*> injectors);

    /// Attaches an observability registry fed once per capture and per burst
    /// (capture/burst counters, per-burst SNR histogram, scoped timers).
    /// Not owned; nullptr detaches.
    void attach_metrics(obs::metrics_registry* metrics) { metrics_ = metrics; }

    /// Simulated time: the sum of all capture windows run so far.
    [[nodiscard]] double clock_s() const { return clock_s_; }

    /// Restarts the deterministic stream as if freshly constructed with
    /// `seed`: resets the clock and run counter and re-derives every seeded
    /// component (transmitter dither, per-tag fading). Lets a sweep worker
    /// reuse one simulator across independent Monte-Carlo trials
    /// (seed = runtime::trial_seed(...)) instead of rebuilding it.
    void reseed(std::uint64_t seed);

    /// Runs one shared capture containing all bursts, then attempts to
    /// receive each burst in its own window. Overlapping bursts interfere at
    /// the sample level; well-separated slots decode independently.
    [[nodiscard]] std::vector<burst_outcome> run(const std::vector<tag_burst>& bursts);

    /// Airtime of one burst for `payload_bytes` (for slot planning).
    [[nodiscard]] double burst_duration_s(std::size_t payload_bytes) const;

    /// Airtime of one burst under an MCS override (robust-mode slots are
    /// longer: fewer bits per symbol, lower code rate).
    [[nodiscard]] double burst_duration_s(std::size_t payload_bytes,
                                          const burst_mcs& mcs) const;

private:
    void rebuild_seeded_state();

    system_config base_;
    std::vector<tag_descriptor> tags_;
    std::vector<channel::backscatter_channel> channels_;
    tag::backscatter_modulator modulator_;
    ap::ap_transmitter transmitter_;
    fault::fault_injector* faults_ = nullptr;
    std::vector<fault::fault_injector*> tag_faults_;
    obs::metrics_registry* metrics_ = nullptr;
    double clock_s_ = 0.0;
    std::uint64_t runs_ = 0;
};

} // namespace mmtag::core
