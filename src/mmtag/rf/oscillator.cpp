#include "mmtag/rf/oscillator.hpp"

#include <stdexcept>

namespace mmtag::rf {

oscillator::oscillator(const config& cfg, std::uint64_t seed)
    : cfg_(cfg), phase_(wrap_phase(cfg.initial_phase_rad)), rng_(seed)
{
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("oscillator: sample rate <= 0");
    if (cfg.linewidth_hz < 0.0) throw std::invalid_argument("oscillator: linewidth < 0");
    increment_ = two_pi * cfg.frequency_offset_hz / cfg.sample_rate_hz;
    // Wiener phase noise: variance per sample = 2 pi * linewidth / fs.
    phase_noise_sigma_ = std::sqrt(two_pi * cfg.linewidth_hz / cfg.sample_rate_hz);
}

cf64 oscillator::step()
{
    const cf64 sample = std::polar(1.0, phase_);
    double delta = increment_;
    if (phase_noise_sigma_ > 0.0) delta += phase_noise_sigma_ * gaussian_(rng_);
    phase_ = wrap_phase(phase_ + delta);
    return sample;
}

cvec oscillator::generate(std::size_t count)
{
    cvec out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(step());
    return out;
}

} // namespace mmtag::rf
