#include "mmtag/rf/rf_switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::rf {

rf_switch::rf_switch(const config& cfg) : cfg_(cfg)
{
    if (cfg.throw_count < 2) throw std::invalid_argument("rf_switch: throw_count must be >= 2");
    if (cfg.rise_fall_time_s < 0.0) throw std::invalid_argument("rf_switch: negative rise time");
    if (cfg.insertion_loss_db < 0.0) {
        throw std::invalid_argument("rf_switch: insertion loss must be >= 0 dB");
    }
    if (cfg.isolation_db <= 0.0) throw std::invalid_argument("rf_switch: isolation must be > 0 dB");
}

double rf_switch::max_symbol_rate_hz() const
{
    if (cfg_.rise_fall_time_s <= 0.0) return 1e18; // ideal switch
    // Allow the transition to occupy at most half the symbol period.
    return 0.5 / cfg_.rise_fall_time_s;
}

cvec rf_switch::state_waveform(std::span<const std::size_t> states,
                               std::span<const cf64> port_coefficients,
                               std::size_t samples_per_symbol, double sample_rate_hz) const
{
    if (port_coefficients.size() != cfg_.throw_count) {
        throw std::invalid_argument("rf_switch: port coefficient count != throw count");
    }
    if (samples_per_symbol == 0) {
        throw std::invalid_argument("rf_switch: samples_per_symbol must be >= 1");
    }
    if (sample_rate_hz <= 0.0) throw std::invalid_argument("rf_switch: sample rate must be > 0");
    for (std::size_t s : states) {
        if (s >= cfg_.throw_count) throw std::invalid_argument("rf_switch: state out of range");
    }

    const double loss = std::pow(10.0, -cfg_.insertion_loss_db / 20.0);
    const double leak = std::pow(10.0, -cfg_.isolation_db / 20.0);

    // Effective coefficient seen at the common port for each selected state:
    // the selected path through insertion loss plus leakage from the others.
    std::vector<cf64> effective(cfg_.throw_count);
    for (std::size_t port = 0; port < cfg_.throw_count; ++port) {
        cf64 others{};
        for (std::size_t k = 0; k < cfg_.throw_count; ++k) {
            if (k != port) others += port_coefficients[k];
        }
        others /= static_cast<double>(cfg_.throw_count - 1);
        effective[port] = loss * port_coefficients[port] + leak * others;
    }

    const auto transition_samples = static_cast<std::size_t>(
        std::round(cfg_.rise_fall_time_s * sample_rate_hz));

    cvec waveform(states.size() * samples_per_symbol);
    for (std::size_t symbol = 0; symbol < states.size(); ++symbol) {
        const cf64 target = effective[states[symbol]];
        const cf64 previous = symbol == 0 ? target : effective[states[symbol - 1]];
        for (std::size_t k = 0; k < samples_per_symbol; ++k) {
            cf64 value = target;
            if (k < transition_samples && previous != target) {
                // Raised-cosine blend from the previous state to the new one.
                const double progress =
                    (static_cast<double>(k) + 0.5) / static_cast<double>(transition_samples);
                const double weight = 0.5 * (1.0 - std::cos(pi * std::min(progress, 1.0)));
                value = previous * (1.0 - weight) + target * weight;
            }
            waveform[symbol * samples_per_symbol + k] = value;
        }
    }
    return waveform;
}

std::size_t rf_switch::count_transitions(std::span<const std::size_t> states)
{
    std::size_t transitions = 0;
    for (std::size_t i = 1; i < states.size(); ++i) {
        if (states[i] != states[i - 1]) ++transitions;
    }
    return transitions;
}

double rf_switch::energy_consumed_j(std::size_t transitions, double duration_s) const
{
    if (duration_s < 0.0) throw std::invalid_argument("rf_switch: negative duration");
    return static_cast<double>(transitions) * cfg_.energy_per_transition_j +
           cfg_.static_power_w * duration_s;
}

double rf_switch::average_power_w(double toggle_rate_hz) const
{
    if (toggle_rate_hz < 0.0) throw std::invalid_argument("rf_switch: negative toggle rate");
    return cfg_.static_power_w + toggle_rate_hz * cfg_.energy_per_transition_j;
}

} // namespace mmtag::rf
