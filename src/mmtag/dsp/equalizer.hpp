// Adaptive linear equalization (LMS) for residual channel distortion.
#pragma once

#include <cstddef>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::dsp {

/// Complex LMS feed-forward equalizer operating at symbol rate.
///
/// Supports a training phase (known symbols) followed by decision-directed
/// operation against an M-PSK slicer.
class lms_equalizer {
public:
    struct config {
        std::size_t taps = 7;
        double step = 0.01;               // LMS mu
        std::size_t modulation_order = 4; // for the decision-directed slicer
    };

    explicit lms_equalizer(const config& cfg);

    /// Adapts on known training symbols; returns equalized outputs.
    [[nodiscard]] cvec train(std::span<const cf64> received, std::span<const cf64> reference);

    /// Decision-directed equalization of payload symbols.
    [[nodiscard]] cvec process(std::span<const cf64> received);

    [[nodiscard]] const cvec& weights() const { return weights_; }
    void reset();

private:
    [[nodiscard]] cf64 filter_and_push(cf64 input);
    void adapt(cf64 error);
    [[nodiscard]] cf64 slice(cf64 symbol) const;

    config cfg_;
    cvec weights_;
    cvec delay_line_;
};

} // namespace mmtag::dsp
