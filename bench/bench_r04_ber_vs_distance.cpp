// R4 — BER vs distance per data rate.
// Three operating points spanning the paper's rate range: 2.5 Mb/s robust
// (QPSK R=1/2 at 2.5 Msym/s), 10 Mb/s (QPSK uncoded), and 20 Mb/s (16-PSK
// uncoded at the same symbol rate). Expected shape: higher rates hit the BER
// wall at shorter distances; the robust rate survives to paper-class ranges.
//
// Runs on the parallel Monte-Carlo runtime: each (distance, rate) point fans
// TRIALS independent links (counter-seeded, bit-identical for any --jobs)
// out across the pool and merges their link_reports in trial order.
#include "bench_util.hpp"
#include "mmtag/core/link_simulator.hpp"
#include "mmtag/core/metrics.hpp"
#include "mmtag/runtime/result_writer.hpp"
#include "mmtag/runtime/sweep_runner.hpp"

using namespace mmtag;

namespace {

struct rate_point {
    const char* label;
    phy::modulation scheme;
    phy::fec_mode fec;
};

constexpr rate_point kRates[] = {
    {"2.5Mbps QPSK-1/2", phy::modulation::qpsk, phy::fec_mode::conv_half},
    {"10Mbps QPSK", phy::modulation::qpsk, phy::fec_mode::uncoded},
    {"20Mbps 16PSK", phy::modulation::psk16, phy::fec_mode::uncoded},
};
constexpr double kDistances[] = {1.0, 2.0, 4.0, 6.0, 8.0, 10.0};
constexpr std::size_t kTrials = 5;
constexpr std::size_t kFramesPerTrial = 4;
constexpr std::size_t kPayloadBytes = 48;

} // namespace

int main(int argc, char** argv)
{
    const auto opts = bench::bench_options::parse(argc, argv);
    bench::banner("R4", "BER vs distance for three uplink data rates", opts.csv);

    const std::size_t rate_count = std::size(kRates);
    const std::size_t point_count = std::size(kDistances) * rate_count;

    runtime::sweep_options sweep;
    sweep.jobs = opts.jobs;
    sweep.base_seed = opts.seed;
    sweep.trials_per_point = kTrials;
    sweep.progress = runtime::stderr_progress();

    const auto outcome = runtime::run_sweep<core::link_report>(
        sweep, point_count, [&](std::size_t point, std::size_t, std::uint64_t seed) {
            auto cfg = bench::bench_scenario();
            cfg.distance_m = kDistances[point / rate_count];
            const auto& rate = kRates[point % rate_count];
            cfg.modulator.frame.scheme = rate.scheme;
            cfg.modulator.frame.fec = rate.fec;
            cfg.receiver.frame = cfg.modulator.frame;
            cfg.seed = seed;
            core::link_simulator sim(cfg);
            return sim.run_trials(kFramesPerTrial, kPayloadBytes);
        });

    runtime::result_writer results("R4", "BER vs distance for three uplink data rates",
                                   {"distance_m", "rate"}, opts.seed);
    bench::table out({"distance_m", "rate", "snr_dB", "ber", "ber_ci95", "per"}, opts.csv);
    for (std::size_t point = 0; point < point_count; ++point) {
        const auto& report = outcome.points[point].aggregate;
        const double distance = kDistances[point / rate_count];
        const auto& rate = kRates[point % rate_count];
        out.add_row({bench::fmt("%.0f", distance), rate.label,
                     bench::fmt("%.1f", report.mean_snr_db),
                     core::format_ber(report.ber, report.bits),
                     bench::fmt("%.1e", report.ber_confidence()),
                     bench::fmt("%.2f", report.per)});
        auto axis = runtime::json_value::object();
        axis.set("distance_m", runtime::json_value::number(distance));
        axis.set("rate", runtime::json_value::string(rate.label));
        results.add_point(std::move(axis), kTrials,
                          runtime::result_writer::metrics(report));
    }
    out.print();
    const auto written = results.write(opts.json_path, outcome.wall_s, outcome.jobs,
                                       outcome.trials_per_s());
    if (!opts.csv) {
        std::printf("\n%s\n", runtime::summary_line(point_count, outcome.trials,
                                                    outcome.wall_s, outcome.jobs)
                                  .c_str());
        if (!written.empty()) std::printf("wrote %s\n", written.c_str());
    }
    return 0;
}
