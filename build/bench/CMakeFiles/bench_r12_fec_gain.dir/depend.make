# Empty dependencies file for bench_r12_fec_gain.
# This may be replaced when dependencies are built.
