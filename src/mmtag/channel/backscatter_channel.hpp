// The composite AP -> tag -> AP channel. Everything the AP's receive antenna
// sees, on one timeline:
//
//   y[k] =   leakage * x[k]                                (TX-to-RX coupling)
//          + sum_i a_clutter_i * x[k - d_i]                (static reflectors)
//          + a_roundtrip * gamma[k - d1] * x[k - d_rt]     (the tag)
//
// where gamma[] is the tag's per-sample reflection coefficient (its modulated
// data), a_roundtrip follows the radar equation with the tag's retro-
// reflective backscatter gain, and all delays are physical path delays.
// Leakage and clutter are *unmodulated* copies of x — which is exactly why
// the AP's self-coherent downconversion turns them into DC that the
// canceller removes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mmtag/common.hpp"

namespace mmtag::channel {

/// A static environmental reflector (wall, desk, shelf).
struct scatterer {
    double distance_m = 3.0;
    double rcs_m2 = 0.1;
    /// Two-way antenna sidelobe discrimination: clutter off the AP's
    /// boresight is illuminated and received through sidelobes, not the
    /// main beam pointed at the tag.
    double antenna_discrimination_db = 0.0;
};

class backscatter_channel {
public:
    struct config {
        double frequency_hz = 24.125e9; ///< 24 GHz ISM band center
        double sample_rate_hz = 2e9;
        double distance_m = 2.0;
        /// Tag orientation: incidence angle of the AP direction measured
        /// from the tag array's broadside.
        double tag_incidence_rad = 0.0;
        double ap_tx_gain_dbi = 20.0;
        double ap_rx_gain_dbi = 20.0;
        /// Tag monostatic backscatter gain at unit |Gamma| (from the
        /// van_atta_array model evaluated at tag_incidence_rad) [dB].
        double tag_backscatter_gain_db = 18.0;
        /// Tag receive aperture gain for the downlink/wake-up path [dB].
        double tag_aperture_gain_db = 9.0;
        /// Direct TX->RX coupling relative to TX power [dB], the dominant
        /// self-interference term.
        double tx_leakage_db = -35.0;
        std::vector<scatterer> clutter;
        double rain_rate_mm_per_hr = 0.0;
        /// Aggregate unmodeled losses on the tag path (pointing error,
        /// polarization mismatch, cable/connector losses, processing loss).
        /// Calibrates the idealized radar budget to bench-like ranges.
        double implementation_loss_db = 0.0;
        /// Rician K-factor of block fading on the tag path [dB]. The default
        /// (>= 80 dB) is effectively pure LOS; lower it to model multipath
        /// fades. One coefficient per draw — call redraw_fading() per frame.
        double rician_k_db = 100.0;
        std::uint64_t fading_seed = 1;
    };

    explicit backscatter_channel(const config& cfg);

    [[nodiscard]] const config& parameters() const { return cfg_; }

    /// One-way propagation delay in samples.
    [[nodiscard]] std::size_t one_way_delay_samples() const { return one_way_delay_; }

    /// Round-trip field amplitude of the tag path at unit |Gamma|
    /// (LOS value, before fading).
    [[nodiscard]] double round_trip_amplitude() const { return round_trip_amplitude_; }

    /// Current block-fading coefficient on the tag path (unit mean power).
    [[nodiscard]] cf64 fading_coefficient() const { return fading_; }

    /// Draws a fresh fading realization (used per frame in fading sweeps).
    void redraw_fading(std::uint64_t seed);

    /// Signal arriving at the tag's antenna port (for the envelope detector
    /// and for generating the reflection): amplitude-scaled, delayed TX.
    [[nodiscard]] cvec incident_at_tag(std::span<const cf64> tx) const;

    /// Full AP receive-antenna signal. `tag_gamma` is the tag's reflection
    /// coefficient waveform on the tag's clock (index k multiplies the TX
    /// sample that reaches the tag at time k); out-of-range indices clamp to
    /// the nearest defined state. Output has the same length as `tx`.
    [[nodiscard]] cvec ap_received(std::span<const cf64> tx,
                                   std::span<const cf64> tag_gamma) const;

    /// Only the tag-path term of ap_received (no leakage/clutter): used to
    /// superpose several tags' reflections onto one environment.
    [[nodiscard]] cvec tag_contribution(std::span<const cf64> tx,
                                        std::span<const cf64> tag_gamma) const;

    /// Received tag-path power [W] for a unit-power CW query at |Gamma| = 1;
    /// the quantity the link budget predicts.
    [[nodiscard]] double tag_path_power(double tx_power_w) const;

    /// Power collected by the tag's aperture for a `tx_power_w` query [W]
    /// (the wake-up/downlink budget).
    [[nodiscard]] double tag_incident_power(double tx_power_w) const;

    /// Static (unmodulated) interference power [W] for a unit-power query:
    /// leakage plus all clutter returns.
    [[nodiscard]] double static_interference_power(double tx_power_w) const;

private:
    config cfg_;
    std::size_t one_way_delay_;
    std::size_t round_trip_delay_;
    double round_trip_amplitude_;
    double one_way_amplitude_;
    double leakage_amplitude_;
    cf64 fading_{1.0, 0.0};
    std::vector<std::size_t> clutter_delays_;
    rvec clutter_amplitudes_;
};

} // namespace mmtag::channel
