// Spatial deployments for the scale-out simulator: seeded generators place
// APs on a grid and tags by one of three layouts (warehouse shelving grid,
// uniform Poisson disc, clustered hotspots), then precompute each tag's
// static link geometry — serving-AP SINR including inter-cell interference
// summed across co-channel APs. The DES engine perturbs these static
// figures per slot with fault impairments; it never recomputes geometry.
//
// Interference model (all APs radiate CW carrier continuously, as in the
// paper's FMCW-free CW architecture):
//   * carrier leak from other APs: one-way path loss into the serving AP's
//     receiver, knocked down by `ap_suppression_db`. Cross-AP carriers are
//     unmodulated CW exactly like the serving AP's own self-leak, so the
//     canceller notch plus DC blocking that strip the (far stronger)
//     self-leak strip them too; what survives is their phase-noise
//     sidebands, hence the ~90 dB default;
//   * cross-cell backscatter: every tag also reflects the *other* APs'
//     carriers toward the serving AP. The bistatic d1^2*d2^2 spreading law
//     equals the monostatic d^4 law at the geometric-mean distance
//     d_eq = sqrt(d1*d2), so the calibrated monostatic link budget is
//     reused as budget.at(sqrt(d1*d2)) — no second calibration needed. The
//     interfering burst is neither time- nor code-aligned with the serving
//     slot, so `tag_suppression_db` of processing rejection (sync
//     correlation, matched filtering) applies on top.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmtag/core/config.hpp"

namespace mmtag::scale {

enum class layout_kind {
    warehouse_grid, ///< tags on regular shelving rows with seeded jitter
    poisson_disc,   ///< uniform random positions over the floor
    clustered,      ///< hotspot clusters (pallets) with Gaussian spread
};

/// Parses "grid" / "poisson" / "clustered"; throws std::invalid_argument.
[[nodiscard]] layout_kind parse_layout(const std::string& text);
[[nodiscard]] const char* layout_name(layout_kind kind);

struct topology_config {
    layout_kind layout = layout_kind::warehouse_grid;
    std::size_t tag_count = 100;
    std::size_t ap_count = 1;
    /// Square deployment floor, side length in metres. APs are placed on a
    /// ceil(sqrt(ap_count)) grid at ceiling height over this floor.
    double floor_m = 12.0;
    /// AP mount height above the tag plane (m).
    double ap_height_m = 3.0;
    /// Residual suppression applied to other APs' carrier leak (dB):
    /// canceller notch + DC blocking leave only phase-noise sidebands.
    double ap_suppression_db = 90.0;
    /// Processing rejection of unaligned cross-cell backscatter bursts (dB).
    double tag_suppression_db = 20.0;
    /// Hotspot count for layout_kind::clustered.
    std::size_t clusters = 4;
    /// Gaussian spread of each hotspot (m).
    double cluster_sigma_m = 0.8;
    std::uint64_t seed = 0x5ca1ab1e;
};

struct placed_tag {
    std::uint32_t id = 0;
    double x_m = 0.0;
    double y_m = 0.0;
    /// Index of the serving AP (nearest by 3-D distance).
    std::size_t ap = 0;
    /// 3-D distance to the serving AP (m).
    double distance_m = 0.0;
    /// Static SINR at the serving AP with every co-channel AP transmitting
    /// and every tag of every other cell backscattering (dB).
    double sinr_db = 0.0;
};

struct placed_ap {
    double x_m = 0.0;
    double y_m = 0.0;
    double z_m = 0.0;
};

struct deployment {
    topology_config config;
    std::vector<placed_ap> aps;
    std::vector<placed_tag> tags; ///< ordered by tag id (0..n-1)
    /// Tag indices per serving AP (cell membership).
    std::vector<std::vector<std::size_t>> cells;
};

/// Generates a seeded deployment and computes per-tag static SINR from the
/// scenario's link budget. Same (config, scenario) in -> same deployment
/// out, bit for bit; placement draws use a counter-based scheme so tag k's
/// position is independent of how many tags precede it.
[[nodiscard]] deployment make_deployment(const topology_config& cfg,
                                         const core::system_config& scenario);

} // namespace mmtag::scale
