# Empty compiler generated dependencies file for bench_r03_snr_vs_distance.
# This may be replaced when dependencies are built.
