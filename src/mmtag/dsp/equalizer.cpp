#include "mmtag/dsp/equalizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmtag::dsp {

lms_equalizer::lms_equalizer(const config& cfg) : cfg_(cfg)
{
    if (cfg_.taps == 0 || cfg_.taps % 2 == 0) {
        throw std::invalid_argument("lms_equalizer: taps must be odd and >= 1");
    }
    if (!(cfg_.step > 0.0 && cfg_.step < 1.0)) {
        throw std::invalid_argument("lms_equalizer: step must be in (0, 1)");
    }
    if (cfg_.modulation_order < 2) {
        throw std::invalid_argument("lms_equalizer: modulation order must be >= 2");
    }
    reset();
}

void lms_equalizer::reset()
{
    weights_.assign(cfg_.taps, cf64{});
    weights_[cfg_.taps / 2] = cf64{1.0, 0.0}; // center-spike initialization
    delay_line_.assign(cfg_.taps, cf64{});
}

cf64 lms_equalizer::filter_and_push(cf64 input)
{
    std::rotate(delay_line_.rbegin(), delay_line_.rbegin() + 1, delay_line_.rend());
    delay_line_[0] = input;
    cf64 acc{};
    for (std::size_t k = 0; k < weights_.size(); ++k) acc += weights_[k] * delay_line_[k];
    return acc;
}

void lms_equalizer::adapt(cf64 error)
{
    for (std::size_t k = 0; k < weights_.size(); ++k) {
        weights_[k] += cfg_.step * error * std::conj(delay_line_[k]);
    }
}

cf64 lms_equalizer::slice(cf64 symbol) const
{
    if (std::abs(symbol) < 1e-12) return cf64{1.0, 0.0};
    const double sector = two_pi / static_cast<double>(cfg_.modulation_order);
    const double nearest = std::round(std::arg(symbol) / sector) * sector;
    return std::polar(1.0, nearest);
}

cvec lms_equalizer::train(std::span<const cf64> received, std::span<const cf64> reference)
{
    if (received.size() != reference.size()) {
        throw std::invalid_argument("lms_equalizer::train: size mismatch");
    }
    cvec out;
    out.reserve(received.size());
    for (std::size_t i = 0; i < received.size(); ++i) {
        const cf64 y = filter_and_push(received[i]);
        adapt(reference[i] - y);
        out.push_back(y);
    }
    return out;
}

cvec lms_equalizer::process(std::span<const cf64> received)
{
    cvec out;
    out.reserve(received.size());
    for (cf64 x : received) {
        const cf64 y = filter_and_push(x);
        adapt(slice(y) - y);
        out.push_back(y);
    }
    return out;
}

} // namespace mmtag::dsp
