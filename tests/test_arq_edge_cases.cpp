// Edge cases of the stop-and-wait ARQ: retry-cap exhaustion, backoff
// growth and ceiling, duplicate handling under ACK loss, and degenerate
// configurations that must be rejected at construction.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "mmtag/mac/arq.hpp"

using namespace mmtag;

namespace {

mac::arq_config backoff_config()
{
    mac::arq_config cfg;
    cfg.max_retries = 6;
    cfg.frame_time_s = 100e-6;
    cfg.ack_time_s = 10e-6;
    cfg.initial_backoff_s = 50e-6;
    cfg.backoff_factor = 2.0;
    cfg.max_backoff_s = 300e-6;
    return cfg;
}

} // namespace

TEST(arq_edge_cases, dead_link_exhausts_retry_cap_exactly)
{
    mac::arq_config cfg;
    cfg.max_retries = 5;
    const mac::stop_and_wait_arq arq(cfg);
    const auto stats = arq.run(20, 0.0, 7);
    EXPECT_EQ(stats.frames_offered, 20u);
    EXPECT_EQ(stats.frames_delivered, 0u);
    EXPECT_EQ(stats.transmissions, 20u * 5u); // every frame burns the full cap
    EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 0.0);
    EXPECT_DOUBLE_EQ(stats.transmission_efficiency(), 0.0);
}

TEST(arq_edge_cases, perfect_link_never_retries)
{
    const mac::stop_and_wait_arq arq;
    const auto stats = arq.run(50, 1.0, 7);
    EXPECT_EQ(stats.frames_delivered, 50u);
    EXPECT_EQ(stats.transmissions, 50u);
    EXPECT_EQ(stats.duplicates_discarded, 0u);
    EXPECT_DOUBLE_EQ(stats.transmission_efficiency(), 1.0);
    EXPECT_DOUBLE_EQ(stats.backoff_wait_s, 0.0); // default config never backs off
}

TEST(arq_edge_cases, backoff_grows_exponentially_then_hits_ceiling)
{
    const mac::stop_and_wait_arq arq(backoff_config());
    EXPECT_DOUBLE_EQ(arq.backoff_delay_s(0), 0.0); // first attempt is immediate
    EXPECT_DOUBLE_EQ(arq.backoff_delay_s(1), 50e-6);
    EXPECT_DOUBLE_EQ(arq.backoff_delay_s(2), 100e-6);
    EXPECT_DOUBLE_EQ(arq.backoff_delay_s(3), 200e-6);
    EXPECT_DOUBLE_EQ(arq.backoff_delay_s(4), 300e-6); // 400 us capped at 300 us
    EXPECT_DOUBLE_EQ(arq.backoff_delay_s(60), 300e-6); // cap holds forever
}

TEST(arq_edge_cases, zero_initial_backoff_disables_all_waits)
{
    auto cfg = backoff_config();
    cfg.initial_backoff_s = 0.0;
    const mac::stop_and_wait_arq arq(cfg);
    for (std::size_t attempt = 0; attempt < 10; ++attempt) {
        EXPECT_DOUBLE_EQ(arq.backoff_delay_s(attempt), 0.0);
    }
    const auto stats = arq.run(10, 0.0, 3);
    EXPECT_DOUBLE_EQ(stats.backoff_wait_s, 0.0);
}

TEST(arq_edge_cases, dead_link_accumulates_the_full_backoff_ladder)
{
    const auto cfg = backoff_config();
    const mac::stop_and_wait_arq arq(cfg);
    // Per frame: attempts 0..5 wait 0 + 50 + 100 + 200 + 300 + 300 us.
    const double per_frame = (0.0 + 50.0 + 100.0 + 200.0 + 300.0 + 300.0) * 1e-6;
    const auto stats = arq.run(8, 0.0, 11);
    EXPECT_NEAR(stats.backoff_wait_s, 8.0 * per_frame, 1e-12);
    // Waits are part of the airtime the link occupies.
    const double per_attempt = cfg.frame_time_s + cfg.ack_time_s;
    EXPECT_NEAR(stats.airtime_s, 8.0 * (per_frame + 6.0 * per_attempt), 1e-12);
}

TEST(arq_edge_cases, lost_acks_force_duplicates_the_receiver_discards)
{
    mac::arq_config cfg;
    cfg.max_retries = 4;
    cfg.ack_loss = 1.0; // every implicit ACK is lost
    const mac::stop_and_wait_arq arq(cfg);
    const auto stats = arq.run(10, 1.0, 5);
    // The sender never sees an ACK, so it burns the whole retry cap; the
    // receiver keeps the first copy and discards the rest.
    EXPECT_EQ(stats.frames_delivered, 10u);
    EXPECT_EQ(stats.transmissions, 10u * 4u);
    EXPECT_EQ(stats.duplicates_discarded, 10u * 3u);
    EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 1.0);
}

TEST(arq_edge_cases, partial_ack_loss_is_between_the_extremes)
{
    mac::arq_config cfg;
    cfg.max_retries = 6;
    cfg.ack_loss = 0.5;
    const mac::stop_and_wait_arq arq(cfg);
    const auto stats = arq.run(200, 1.0, 21);
    EXPECT_EQ(stats.frames_delivered, 200u);
    EXPECT_GT(stats.duplicates_discarded, 0u);
    EXPECT_LT(stats.duplicates_discarded, 200u * 5u);
    EXPECT_GT(stats.transmissions, 200u);
}

TEST(arq_edge_cases, ack_loss_zero_preserves_the_classic_rng_sequence)
{
    // ack_loss == 0 must not consume an extra RNG draw per delivery, so the
    // stats match a config that never heard of ACK loss.
    mac::arq_config classic;
    classic.max_retries = 8;
    const auto a = mac::stop_and_wait_arq(classic).run(100, 0.7, 99);
    mac::arq_config with_field = classic;
    with_field.ack_loss = 0.0;
    const auto b = mac::stop_and_wait_arq(with_field).run(100, 0.7, 99);
    EXPECT_EQ(a.frames_delivered, b.frames_delivered);
    EXPECT_EQ(a.transmissions, b.transmissions);
    EXPECT_DOUBLE_EQ(a.airtime_s, b.airtime_s);
}

TEST(arq_edge_cases, degenerate_configs_throw)
{
    mac::arq_config cfg;
    cfg.max_retries = 0;
    EXPECT_THROW(mac::stop_and_wait_arq{cfg}, std::invalid_argument);

    cfg = {};
    cfg.frame_time_s = 0.0;
    EXPECT_THROW(mac::stop_and_wait_arq{cfg}, std::invalid_argument);

    cfg = {};
    cfg.frame_time_s = -1e-6;
    EXPECT_THROW(mac::stop_and_wait_arq{cfg}, std::invalid_argument);

    cfg = {};
    cfg.ack_time_s = -1e-6;
    EXPECT_THROW(mac::stop_and_wait_arq{cfg}, std::invalid_argument);

    cfg = {};
    cfg.initial_backoff_s = -1e-6;
    EXPECT_THROW(mac::stop_and_wait_arq{cfg}, std::invalid_argument);

    cfg = {};
    cfg.max_backoff_s = -1e-6;
    EXPECT_THROW(mac::stop_and_wait_arq{cfg}, std::invalid_argument);

    cfg = {};
    cfg.backoff_factor = 0.5;
    EXPECT_THROW(mac::stop_and_wait_arq{cfg}, std::invalid_argument);

    cfg = {};
    cfg.ack_loss = 1.5;
    EXPECT_THROW(mac::stop_and_wait_arq{cfg}, std::invalid_argument);

    cfg = {};
    cfg.ack_loss = -0.1;
    EXPECT_THROW(mac::stop_and_wait_arq{cfg}, std::invalid_argument);
}

TEST(arq_edge_cases, invalid_success_probability_throws)
{
    const mac::stop_and_wait_arq arq;
    EXPECT_THROW((void)arq.run(10, -0.1, 1), std::invalid_argument);
    EXPECT_THROW((void)arq.run(10, 1.1, 1), std::invalid_argument);
    EXPECT_THROW((void)arq.expected_transmissions(0.0), std::invalid_argument);
}

TEST(arq_edge_cases, backoff_stays_finite_at_saturated_attempt_counts)
{
    // factor^(attempt-1) overflows double range long before attempt counters
    // wrap; the ladder must clamp to the cap instead of returning inf/NaN.
    const mac::stop_and_wait_arq arq(backoff_config());
    const std::size_t huge[] = {1u << 20, std::numeric_limits<std::size_t>::max()};
    for (const std::size_t attempt : huge) {
        const double wait = arq.backoff_delay_s(attempt);
        EXPECT_TRUE(std::isfinite(wait)) << "attempt " << attempt;
        EXPECT_DOUBLE_EQ(wait, backoff_config().max_backoff_s);
    }

    // Same clamp when the inputs themselves are extreme but legal.
    auto cfg = backoff_config();
    cfg.backoff_factor = 1e300;
    const mac::stop_and_wait_arq steep(cfg);
    EXPECT_DOUBLE_EQ(steep.backoff_delay_s(2), cfg.max_backoff_s);
    EXPECT_DOUBLE_EQ(steep.backoff_delay_s(1), cfg.initial_backoff_s)
        << "attempt 1 is factor^0 and must not clamp";
}

TEST(arq_edge_cases, expected_transmissions_matches_the_truncated_series)
{
    // Closed form (1 - q^R)/p against the explicit E[min(Geom(p), R)] sum
    // for small caps where the series is cheap to evaluate directly.
    for (const double p : {0.2, 0.5, 0.9}) {
        for (const std::size_t retries : {1u, 2u, 5u, 8u}) {
            mac::arq_config cfg;
            cfg.max_retries = retries;
            const mac::stop_and_wait_arq arq(cfg);
            const double q = 1.0 - p;
            double series = 0.0;
            for (std::size_t k = 1; k <= retries; ++k) {
                series += static_cast<double>(k) * p * std::pow(q, static_cast<double>(k - 1));
            }
            series += static_cast<double>(retries) * std::pow(q, static_cast<double>(retries));
            EXPECT_NEAR(arq.expected_transmissions(p), series, 1e-12)
                << "p=" << p << " R=" << retries;
        }
    }
}

TEST(arq_edge_cases, expected_transmissions_is_closed_form_at_huge_retry_caps)
{
    // A "supervision off" cap must not degrade into a SIZE_MAX-term loop;
    // with q^R -> 0 the expectation is exactly the untruncated 1/p.
    mac::arq_config cfg;
    cfg.max_retries = std::numeric_limits<std::size_t>::max();
    const mac::stop_and_wait_arq arq(cfg);
    EXPECT_NEAR(arq.expected_transmissions(0.25), 4.0, 1e-9);
    EXPECT_NEAR(arq.expected_transmissions(1.0), 1.0, 1e-12);
    EXPECT_TRUE(std::isfinite(arq.expected_transmissions(1e-9)));
}

TEST(arq_edge_cases, same_seed_same_stats)
{
    const mac::stop_and_wait_arq arq(backoff_config());
    const auto a = arq.run(100, 0.6, 1234);
    const auto b = arq.run(100, 0.6, 1234);
    EXPECT_EQ(a.frames_delivered, b.frames_delivered);
    EXPECT_EQ(a.transmissions, b.transmissions);
    EXPECT_EQ(a.duplicates_discarded, b.duplicates_discarded);
    EXPECT_DOUBLE_EQ(a.airtime_s, b.airtime_s);
    EXPECT_DOUBLE_EQ(a.backoff_wait_s, b.backoff_wait_s);
}
