// Time-varying blockage: mmWave links die behind a human body. The model is
// a two-state (clear/blocked) continuous-time Markov process with smooth
// raised-cosine transitions — the standard abstraction for body-shadowing
// studies — producing a per-sample loss trace the link applies to the tag
// path.
#pragma once

#include <cstdint>
#include <random>

#include "mmtag/common.hpp"

namespace mmtag::channel {

class blockage_process {
public:
    struct config {
        double sample_rate_hz = 50e6;
        /// Mean time between blockage onsets [s].
        double mean_clear_s = 50e-3;
        /// Mean blockage dwell [s].
        double mean_blocked_s = 20e-3;
        /// Loss while fully blocked [dB] (body shadowing at 24 GHz: 15-30).
        double blockage_loss_db = 20.0;
        /// Rise/decay time of the shadow edge [s] (person walking).
        double transition_s = 2e-3;
    };

    blockage_process(const config& cfg, std::uint64_t seed);

    [[nodiscard]] const config& parameters() const { return cfg_; }
    [[nodiscard]] bool blocked() const { return blocked_; }

    /// Field-amplitude factor for the next sample (1 = clear).
    [[nodiscard]] double step();

    /// Amplitude trace for `count` samples.
    [[nodiscard]] rvec generate(std::size_t count);

    /// Long-run fraction of time spent blocked (analytic).
    [[nodiscard]] double duty_cycle() const;

private:
    void schedule_next();

    config cfg_;
    std::mt19937_64 rng_;
    bool blocked_ = false;
    double time_s_ = 0.0;
    double next_toggle_s_ = 0.0;
    double level_ = 1.0;          // current amplitude factor
    double blocked_amplitude_;    // amplitude when fully blocked
    double slew_per_sample_;      // max level change per sample
};

} // namespace mmtag::channel
