#include <gtest/gtest.h>

#include "mmtag/rf/envelope_detector.hpp"
#include "mmtag/rf/rf_switch.hpp"

namespace mmtag::rf {
namespace {

TEST(rf_switch, max_rate_from_rise_time)
{
    rf_switch::config cfg;
    cfg.rise_fall_time_s = 2e-9;
    rf_switch sw(cfg);
    EXPECT_NEAR(sw.max_symbol_rate_hz(), 250e6, 1.0);
}

TEST(rf_switch, state_waveform_holds_levels)
{
    rf_switch::config cfg;
    cfg.throw_count = 2;
    cfg.insertion_loss_db = 0.0;
    cfg.isolation_db = 200.0;
    cfg.rise_fall_time_s = 0.0; // ideal
    rf_switch sw(cfg);
    const cvec ports{cf64{1.0, 0.0}, cf64{-1.0, 0.0}};
    const std::vector<std::size_t> states{0, 1, 0};
    const cvec wave = sw.state_waveform(states, ports, 4, 1e9);
    ASSERT_EQ(wave.size(), 12u);
    // 200 dB isolation still leaks ~1e-10 of the unselected port.
    for (int i = 0; i < 4; ++i) EXPECT_NEAR(wave[i].real(), 1.0, 1e-9);
    for (int i = 4; i < 8; ++i) EXPECT_NEAR(wave[i].real(), -1.0, 1e-9);
    for (int i = 8; i < 12; ++i) EXPECT_NEAR(wave[i].real(), 1.0, 1e-9);
}

TEST(rf_switch, insertion_loss_scales_amplitude)
{
    rf_switch::config cfg;
    cfg.throw_count = 2;
    cfg.insertion_loss_db = 6.0;
    cfg.isolation_db = 200.0;
    cfg.rise_fall_time_s = 0.0;
    rf_switch sw(cfg);
    const cvec ports{cf64{1.0, 0.0}, cf64{0.0, 0.0}};
    const std::vector<std::size_t> states{0};
    const cvec wave = sw.state_waveform(states, ports, 2, 1e9);
    EXPECT_NEAR(wave[0].real(), std::pow(10.0, -6.0 / 20.0), 1e-9);
}

TEST(rf_switch, finite_rise_time_ramps_between_states)
{
    rf_switch::config cfg;
    cfg.throw_count = 2;
    cfg.insertion_loss_db = 0.0;
    cfg.isolation_db = 200.0;
    cfg.rise_fall_time_s = 4e-9; // 4 samples at 1 GS/s
    rf_switch sw(cfg);
    const cvec ports{cf64{1.0, 0.0}, cf64{-1.0, 0.0}};
    const std::vector<std::size_t> states{0, 1};
    const cvec wave = sw.state_waveform(states, ports, 10, 1e9);
    // First samples of symbol 2 must be intermediate, not -1 yet.
    EXPECT_GT(wave[10].real(), -0.95);
    EXPECT_LT(wave[13].real(), -0.8); // ramp completes within rise time
    EXPECT_NEAR(wave[19].real(), -1.0, 1e-9);
}

TEST(rf_switch, transition_count)
{
    const std::vector<std::size_t> states{0, 0, 1, 2, 2, 0};
    EXPECT_EQ(rf_switch::count_transitions(states), 3u);
    EXPECT_EQ(rf_switch::count_transitions(std::vector<std::size_t>{}), 0u);
}

TEST(rf_switch, energy_model)
{
    rf_switch::config cfg;
    cfg.energy_per_transition_j = 10e-12;
    cfg.static_power_w = 1e-3;
    rf_switch sw(cfg);
    EXPECT_NEAR(sw.energy_consumed_j(100, 1e-3), 100 * 10e-12 + 1e-6, 1e-15);
    EXPECT_NEAR(sw.average_power_w(1e6), 1e-3 + 1e6 * 10e-12, 1e-12);
}

TEST(rf_switch, validation)
{
    rf_switch::config cfg;
    cfg.throw_count = 1;
    EXPECT_THROW(rf_switch{cfg}, std::invalid_argument);
    cfg.throw_count = 2;
    const cvec ports{cf64{1.0, 0.0}};
    rf_switch sw(cfg);
    EXPECT_THROW((void)sw.state_waveform(std::vector<std::size_t>{0}, ports, 4, 1e9),
                 std::invalid_argument); // port count mismatch
    const cvec two_ports{cf64{1.0, 0.0}, cf64{0.0, 0.0}};
    EXPECT_THROW((void)sw.state_waveform(std::vector<std::size_t>{5}, two_ports, 4, 1e9),
                 std::invalid_argument); // state out of range
}

TEST(envelope_detector, output_tracks_input_power)
{
    envelope_detector::config cfg;
    cfg.responsivity_v_per_w = 1000.0;
    cfg.video_bandwidth_hz = 50e6;
    cfg.sample_rate_hz = 1e9;
    cfg.noise_equivalent_power_w = 0.0;
    envelope_detector detector(cfg, 3);
    const cvec rf(2000, cf64{0.1, 0.0}); // 10 mW incident
    const rvec v = detector.detect(rf);
    EXPECT_NEAR(v.back(), 1000.0 * 0.01, 1e-4); // 10 V/W * 10 mW
}

TEST(envelope_detector, video_filter_smooths_fast_modulation)
{
    envelope_detector::config cfg;
    cfg.responsivity_v_per_w = 1000.0;
    cfg.video_bandwidth_hz = 1e6; // slow video bandwidth
    cfg.sample_rate_hz = 1e9;
    cfg.noise_equivalent_power_w = 0.0;
    envelope_detector detector(cfg, 4);
    // 100 MHz OOK: far above the video corner, detector sees the average.
    cvec rf(20000);
    for (std::size_t i = 0; i < rf.size(); ++i) {
        rf[i] = (i / 5) % 2 == 0 ? cf64{0.1, 0.0} : cf64{};
    }
    const rvec v = detector.detect(rf);
    EXPECT_NEAR(v.back(), 1000.0 * 0.01 / 2.0, 0.5);
}

TEST(envelope_detector, threshold_hysteresis)
{
    envelope_detector detector({}, 5);
    const rvec voltage{0.0, 0.6, 0.45, 0.35, 0.2, 0.6};
    const auto on = detector.threshold(voltage, 0.5, 0.3);
    EXPECT_FALSE(on[0]);
    EXPECT_TRUE(on[1]);
    EXPECT_TRUE(on[2]); // stays on between thresholds
    EXPECT_TRUE(on[3]);
    EXPECT_FALSE(on[4]); // drops below off threshold
    EXPECT_TRUE(on[5]);
}

TEST(envelope_detector, validation)
{
    envelope_detector::config cfg;
    cfg.video_bandwidth_hz = 1e12; // above Nyquist
    EXPECT_THROW(envelope_detector(cfg, 1), std::invalid_argument);
}

} // namespace
} // namespace mmtag::rf
