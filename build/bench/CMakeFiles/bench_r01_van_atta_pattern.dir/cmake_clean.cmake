file(REMOVE_RECURSE
  "CMakeFiles/bench_r01_van_atta_pattern.dir/bench_r01_van_atta_pattern.cpp.o"
  "CMakeFiles/bench_r01_van_atta_pattern.dir/bench_r01_van_atta_pattern.cpp.o.d"
  "bench_r01_van_atta_pattern"
  "bench_r01_van_atta_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r01_van_atta_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
