// Frame preamble: an AGC settling ramp of alternating BPSK symbols followed
// by a 63-chip m-sequence sync word. The sync word's sharp autocorrelation
// gives burst timing; its known symbols double as pilots for carrier phase.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "mmtag/common.hpp"

namespace mmtag::phy {

struct preamble_layout {
    std::size_t agc_symbols = 16;  ///< alternating +1/-1 warm-up
    /// m-sequence degree (sync length 2^deg - 1). 127 chips keep the
    /// peak-to-sidelobe ratio comfortably above the quality gate even when
    /// the payload is BPSK (statistically similar to the sync word).
    std::size_t sync_degree = 7;

    [[nodiscard]] std::size_t sync_symbols() const { return (std::size_t{1} << sync_degree) - 1; }
    [[nodiscard]] std::size_t total_symbols() const { return agc_symbols + sync_symbols(); }
};

/// BPSK preamble symbols for the layout.
[[nodiscard]] cvec make_preamble(const preamble_layout& layout = {});

/// Just the sync-word symbols (the correlation reference).
[[nodiscard]] cvec sync_word(const preamble_layout& layout = {});

struct sync_result {
    std::size_t frame_start = 0; ///< first symbol index after the sync word
    double peak_to_sidelobe = 0.0;
    cf64 channel_gain{};         ///< complex gain estimated over the sync word
};

/// Locates the sync word in a symbol-rate stream. Returns std::nullopt when
/// the best correlation peak fails the `min_peak_to_sidelobe` quality gate.
[[nodiscard]] std::optional<sync_result> detect_preamble(std::span<const cf64> symbols,
                                                         const preamble_layout& layout = {},
                                                         double min_peak_to_sidelobe = 2.0);

} // namespace mmtag::phy
