#include "mmtag/runtime/json_io.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mmtag::runtime {

bool write_text_file(const std::string& path, const std::string& text)
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return false;
    }
    out << text;
    // Written documents always end in exactly one newline.
    if (text.empty() || text.back() != '\n') out << '\n';
    return static_cast<bool>(out);
}

std::optional<std::string> read_text_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return std::nullopt;
    return buffer.str();
}

json_value ratio_or_null(double value, std::uint64_t observations)
{
    if (observations == 0 || !std::isfinite(value)) return json_value::null();
    return json_value::number(value);
}

json_value schema_object(const std::string& schema)
{
    auto doc = json_value::object();
    doc.set("schema", json_value::string(schema));
    return doc;
}

namespace {

/// Recursive-descent parser over the exact grammar json_value::dump emits
/// (plus standard JSON it never produces, like exponents and unicode
/// escapes, so hand-edited documents still load).
class parser {
public:
    explicit parser(const std::string& text) : text_(text) {}

    std::optional<json_value> run()
    {
        skip_ws();
        auto value = parse_value();
        if (!value) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) return std::nullopt;
        return value;
    }

private:
    std::optional<json_value> parse_value()
    {
        if (depth_ > 128) return std::nullopt;
        switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': {
            auto text = parse_string();
            if (!text) return std::nullopt;
            return json_value::string(std::move(*text));
        }
        case 't':
            if (!literal("true")) return std::nullopt;
            return json_value::boolean(true);
        case 'f':
            if (!literal("false")) return std::nullopt;
            return json_value::boolean(false);
        case 'n':
            if (!literal("null")) return std::nullopt;
            return json_value::null();
        default: return parse_number();
        }
    }

    std::optional<json_value> parse_object()
    {
        ++pos_; // {
        ++depth_;
        auto object = json_value::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return object;
        }
        while (true) {
            skip_ws();
            auto key = parse_string();
            if (!key) return std::nullopt;
            skip_ws();
            if (peek() != ':') return std::nullopt;
            ++pos_;
            skip_ws();
            auto value = parse_value();
            if (!value) return std::nullopt;
            object.set(*key, std::move(*value));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return object;
            }
            return std::nullopt;
        }
    }

    std::optional<json_value> parse_array()
    {
        ++pos_; // [
        ++depth_;
        auto array = json_value::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return array;
        }
        while (true) {
            skip_ws();
            auto value = parse_value();
            if (!value) return std::nullopt;
            array.push(std::move(*value));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return array;
            }
            return std::nullopt;
        }
    }

    std::optional<std::string> parse_string()
    {
        if (peek() != '"') return std::nullopt;
        ++pos_;
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return std::nullopt;
                switch (text_[pos_]) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 >= text_.size()) return std::nullopt;
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + 1 + static_cast<std::size_t>(i)];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
                        else return std::nullopt;
                    }
                    pos_ += 4;
                    // UTF-8 encode the code point (surrogate pairs are not
                    // reassembled; our emitter only escapes control chars).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                }
                default: return std::nullopt;
                }
                ++pos_;
            } else {
                out += c;
                ++pos_;
            }
        }
        if (pos_ >= text_.size()) return std::nullopt;
        ++pos_; // closing quote
        return out;
    }

    std::optional<json_value> parse_number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) return std::nullopt;
        const std::string token = text_.substr(start, pos_ - start);
        if (integral) {
            errno = 0;
            char* end = nullptr;
            if (token[0] == '-') {
                const long long value = std::strtoll(token.c_str(), &end, 10);
                if (errno == 0 && end != nullptr && *end == '\0') {
                    return json_value::integer(value);
                }
            } else {
                const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
                if (errno == 0 && end != nullptr && *end == '\0') {
                    return json_value::unsigned_integer(value);
                }
            }
            // Out-of-range integer literal: fall through to double.
        }
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0' || !std::isfinite(value)) return std::nullopt;
        return json_value::number(value);
    }

    bool literal(const char* word)
    {
        const std::string w(word);
        if (text_.compare(pos_, w.size(), w) != 0) return false;
        pos_ += w.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

std::optional<json_value> parse_json(const std::string& text)
{
    return parser(text).run();
}

} // namespace mmtag::runtime
