// Per-tag session state machine for network-level supervision. Where
// ap::link_supervisor watches one link's CRC stream, a tag_session tracks a
// tag's health across TDMA rounds so the network supervisor can reallocate
// airtime away from dead tags and probe them back in:
//
//   ACTIVE ----fail streak >= degraded_streak----> DEGRADED
//   DEGRADED --delivery-------------------------> ACTIVE
//   DEGRADED --fail streak >= quarantine_streak--> QUARANTINED
//   QUARANTINED --probe due (capped backoff)-----> PROBING
//   PROBING --probe failed-----------------------> QUARANTINED
//   PROBING --readmit_streak probe successes-----> ACTIVE (re-admitted)
//
// Every other transition is illegal; the machine throws std::logic_error
// rather than entering an undefined state, and logs each transition so the
// soak harness's legality checker can audit a whole run after the fact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmtag::net {

enum class session_state : std::uint8_t {
    active = 0,      ///< scheduled every round at the adapted MCS
    degraded = 1,    ///< scheduled at the robust MCS, one delivery heals
    quarantined = 2, ///< unscheduled; waiting out the probe backoff
    probing = 3,     ///< spending one probe slot this round
};

[[nodiscard]] const char* session_state_name(session_state state);

struct session_config {
    /// Consecutive data failures that demote ACTIVE to DEGRADED.
    std::size_t degraded_streak = 2;
    /// Consecutive data failures that quarantine a DEGRADED session. Must
    /// exceed degraded_streak (a session always degrades before it is
    /// quarantined).
    std::size_t quarantine_streak = 5;
    /// Consecutive successful probes required for re-admission.
    std::size_t readmit_streak = 2;
    /// Rounds between quarantine entry and the first probe.
    std::size_t probe_backoff_initial_rounds = 1;
    /// Backoff growth per failed probe, capped at probe_backoff_cap_rounds
    /// (ladder 1, 2, 4, ... with the defaults).
    double probe_backoff_factor = 2.0;
    std::size_t probe_backoff_cap_rounds = 4;

    /// Documented re-admission bound: once the tag is physically healthy,
    /// the next probe is at most the backoff cap away and re-admission takes
    /// readmit_streak consecutive probe rounds after it.
    [[nodiscard]] std::size_t max_readmit_rounds() const
    {
        return probe_backoff_cap_rounds + readmit_streak;
    }
};

/// One logged state change ('round' is the supervisor round it happened in).
struct session_transition {
    session_state from = session_state::active;
    session_state to = session_state::active;
    std::size_t round = 0;
};

/// True for the six legal edges of the machine (self-transitions are not
/// transitions and return false).
[[nodiscard]] bool legal_transition(session_state from, session_state to);

class tag_session {
public:
    explicit tag_session(std::uint32_t tag_id, const session_config& cfg = {});

    [[nodiscard]] std::uint32_t tag_id() const { return tag_id_; }
    [[nodiscard]] const session_config& parameters() const { return cfg_; }
    [[nodiscard]] session_state state() const { return state_; }
    [[nodiscard]] bool schedulable() const
    {
        return state_ == session_state::active || state_ == session_state::degraded;
    }
    [[nodiscard]] std::size_t fail_streak() const { return fail_streak_; }

    /// QUARANTINED with the backoff expired by `round`, or already PROBING
    /// mid-streak (successive probes run back-to-back; backoff only spaces
    /// out probes after a failure).
    [[nodiscard]] bool probe_due(std::size_t round) const;
    /// QUARANTINED -> PROBING (no-op when already PROBING mid-streak);
    /// throws unless probe_due(round).
    void begin_probe(std::size_t round);
    /// Outcome of this round's probe; PROBING -> ACTIVE after readmit_streak
    /// consecutive successes, -> QUARANTINED (with grown backoff) on failure.
    void record_probe(bool delivered, std::size_t round);
    /// Outcome of one data frame; legal only while schedulable().
    void record_data(bool delivered, std::size_t round);

    /// Every state change since construction, in chronological order.
    [[nodiscard]] const std::vector<session_transition>& transitions() const
    {
        return transitions_;
    }
    /// Rounds from each quarantine entry to the matching re-admission.
    [[nodiscard]] const std::vector<std::size_t>& readmit_latencies_rounds() const
    {
        return readmit_latencies_;
    }

private:
    void transition_to(session_state to, std::size_t round);

    std::uint32_t tag_id_;
    session_config cfg_;
    session_state state_ = session_state::active;
    std::size_t fail_streak_ = 0;
    std::size_t probe_success_streak_ = 0;
    std::size_t backoff_rounds_ = 0;
    std::size_t next_probe_round_ = 0;
    std::size_t quarantined_since_ = 0;
    std::vector<session_transition> transitions_;
    std::vector<std::size_t> readmit_latencies_;
};

} // namespace mmtag::net
