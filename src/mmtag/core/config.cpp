#include "mmtag/core/config.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace mmtag::core {

system_config default_scenario()
{
    system_config cfg;
    cfg.distance_m = 2.0;
    cfg.tag_incidence_rad = 0.0;
    cfg.sample_rate_hz = 250e6;
    cfg.symbol_rate_hz = 5e6;

    cfg.transmitter.tx_power_dbm = 27.0;
    cfg.transmitter.sample_rate_hz = cfg.sample_rate_hz;
    cfg.transmitter.lo_linewidth_hz = 100.0; // bench-grade synthesizer
    cfg.transmitter.pa.gain_db = 30.0;
    cfg.transmitter.pa.output_saturation_dbm = 33.0;

    cfg.receiver.sample_rate_hz = cfg.sample_rate_hz;
    cfg.receiver.samples_per_symbol =
        static_cast<std::size_t>(std::round(cfg.sample_rate_hz / cfg.symbol_rate_hz));
    cfg.receiver.lna.gain_db = 20.0;
    cfg.receiver.lna.noise_figure_db = 3.5;
    cfg.receiver.lna.bandwidth_hz = cfg.sample_rate_hz;
    // The ADC must span the self-interference-to-tag dynamic range; 16-bit
    // SDR-class conversion keeps quantization below the thermal floor (the
    // R14 bench sweeps this).
    cfg.receiver.adc.bits = 16;
    cfg.receiver.adc.full_scale = 1.0;
    cfg.receiver.frame.scheme = phy::modulation::qpsk;
    cfg.receiver.frame.fec = phy::fec_mode::conv_half;

    cfg.van_atta.element_count = 8;
    cfg.van_atta.spacing_wavelengths = 0.5;
    cfg.van_atta.line_loss_db = 1.0;

    cfg.modulator.frame = cfg.receiver.frame;
    cfg.modulator.sample_rate_hz = cfg.sample_rate_hz;
    cfg.modulator.symbol_rate_hz = cfg.symbol_rate_hz;
    cfg.modulator.bank.stub_loss_db = 0.5;
    cfg.modulator.rf_switch.rise_fall_time_s = 2e-9;
    cfg.modulator.guard_symbols = 8;

    // Separate 20 dBi TX/RX horns: direct coupling is sidelobe-to-sidelobe.
    cfg.tx_leakage_db = -60.0;
    cfg.clutter = {
        {3.0, 0.5, 25.0},  // wall, off boresight
        {1.5, 0.05, 25.0}, // desk edge, off boresight
    };
    return cfg;
}

system_config fast_scenario()
{
    auto cfg = default_scenario();
    cfg.sample_rate_hz = 50e6;
    cfg.symbol_rate_hz = 5e6;
    cfg.transmitter.sample_rate_hz = cfg.sample_rate_hz;
    cfg.receiver.sample_rate_hz = cfg.sample_rate_hz;
    cfg.receiver.samples_per_symbol = 10;
    cfg.receiver.lna.bandwidth_hz = cfg.sample_rate_hz;
    cfg.modulator.sample_rate_hz = cfg.sample_rate_hz;
    return cfg;
}

system_config warehouse_scenario()
{
    auto cfg = fast_scenario();
    cfg.van_atta.element_count = 16; // range over rate
    cfg.modulator.frame.scheme = phy::modulation::qpsk;
    cfg.modulator.frame.fec = phy::fec_mode::conv_half;
    cfg.receiver.frame = cfg.modulator.frame;
    cfg.clutter = {
        {2.0, 0.3, 20.0},  // racking
        {3.5, 0.8, 22.0},  // far shelving
        {5.0, 1.5, 25.0},  // back wall
        {1.2, 0.05, 18.0}, // forklift mast
    };
    return cfg;
}

system_config wearable_scenario()
{
    auto cfg = fast_scenario();
    cfg.symbol_rate_hz = 12.5e6;
    cfg.receiver.samples_per_symbol = 4;
    cfg.modulator.symbol_rate_hz = cfg.symbol_rate_hz;
    cfg.modulator.frame.scheme = phy::modulation::psk8;
    cfg.modulator.frame.fec = phy::fec_mode::conv_two_thirds;
    cfg.receiver.frame = cfg.modulator.frame;
    cfg.distance_m = 1.5; // arm's length to a headset AP
    cfg.clutter = {{1.0, 0.02, 20.0}};
    return cfg;
}

channel::backscatter_channel::config make_channel_config(const system_config& cfg)
{
    channel::backscatter_channel::config chan;
    chan.frequency_hz = 24.125e9;
    chan.sample_rate_hz = cfg.sample_rate_hz;
    chan.distance_m = cfg.distance_m;
    chan.tag_incidence_rad = cfg.tag_incidence_rad;
    chan.ap_tx_gain_dbi = cfg.ap_tx_gain_dbi;
    chan.ap_rx_gain_dbi = cfg.ap_rx_gain_dbi;
    chan.tx_leakage_db = cfg.tx_leakage_db;
    chan.clutter = cfg.clutter;
    chan.rain_rate_mm_per_hr = cfg.rain_rate_mm_per_hr;
    chan.implementation_loss_db = cfg.implementation_loss_db;
    chan.rician_k_db = cfg.rician_k_db;
    chan.fading_seed = cfg.seed * 48271 + 11;

    const auto radiator = std::make_shared<antenna::patch_element>();
    if (cfg.reflector == reflector_kind::van_atta) {
        const antenna::van_atta_array array(cfg.van_atta, radiator);
        chan.tag_backscatter_gain_db =
            to_db(std::max(array.monostatic_gain(cfg.tag_incidence_rad), 1e-12));
    } else {
        const antenna::flat_plate_reflector plate(cfg.van_atta.element_count,
                                                  cfg.van_atta.spacing_wavelengths, radiator);
        chan.tag_backscatter_gain_db =
            to_db(std::max(plate.monostatic_gain(cfg.tag_incidence_rad), 1e-12));
    }
    // Receive aperture for the wake-up path: N-element collecting area.
    chan.tag_aperture_gain_db =
        to_db(static_cast<double>(cfg.van_atta.element_count) *
              radiator->gain(cfg.tag_incidence_rad) + 1e-12);
    return chan;
}

void validate(const system_config& cfg)
{
    if (cfg.sample_rate_hz <= 0.0) throw std::invalid_argument("config: sample rate <= 0");
    if (cfg.symbol_rate_hz <= 0.0) throw std::invalid_argument("config: symbol rate <= 0");
    const double sps = cfg.sample_rate_hz / cfg.symbol_rate_hz;
    if (sps < 2.0) throw std::invalid_argument("config: fewer than 2 samples per symbol");
    if (std::abs(sps - std::round(sps)) > 1e-6) {
        throw std::invalid_argument("config: sample rate must be a multiple of symbol rate");
    }
    if (cfg.receiver.samples_per_symbol != static_cast<std::size_t>(std::round(sps))) {
        throw std::invalid_argument("config: receiver samples_per_symbol inconsistent");
    }
    if (cfg.modulator.sample_rate_hz != cfg.sample_rate_hz ||
        cfg.transmitter.sample_rate_hz != cfg.sample_rate_hz ||
        cfg.receiver.sample_rate_hz != cfg.sample_rate_hz) {
        throw std::invalid_argument("config: component sample rates diverge");
    }
    if (cfg.modulator.symbol_rate_hz != cfg.symbol_rate_hz) {
        throw std::invalid_argument("config: modulator symbol rate inconsistent");
    }
    if (cfg.distance_m <= 0.0) throw std::invalid_argument("config: distance <= 0");
    if (std::abs(cfg.tag_incidence_rad) >= pi / 2.0) {
        throw std::invalid_argument("config: tag incidence must be within (-90, 90) degrees");
    }
}

} // namespace mmtag::core
