// Post-inventory TDMA: the AP polls identified tags in a round-robin
// schedule. Models per-slot overhead (query, tag turnaround, guard) so the
// aggregate goodput saturates realistically as the population grows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmtag::mac {

struct tdma_config {
    double query_time_s = 10e-6;      ///< AP query / slot announcement
    double turnaround_s = 2e-6;       ///< tag detect-to-respond latency
    double guard_time_s = 1e-6;       ///< inter-slot guard
    std::size_t frame_payload_bytes = 256;
    double phy_rate_bps = 10e6;       ///< information rate during the burst
    /// PHY framing overhead in symbols converted to time by the caller via
    /// overhead_bits / phy_rate; preamble+header of the mmtag frame.
    std::size_t overhead_bits = 256;
};

struct tdma_slot {
    std::uint32_t tag_id = 0;
    double start_s = 0.0;
    double duration_s = 0.0;
};

/// Degraded-mode allocation: how many slots of the cycle a tag receives.
/// Zero drops the tag from the cycle (a quarantined session), counts above
/// one absorb airtime freed by dropped tags.
struct slot_share {
    std::uint32_t tag_id = 0;
    std::size_t slots = 1;
};

struct tdma_metrics {
    double cycle_time_s = 0.0;        ///< one full round over all tags
    double per_tag_goodput_bps = 0.0;
    double aggregate_goodput_bps = 0.0;
    double channel_utilization = 0.0; ///< payload airtime / total time
};

class tdma_scheduler {
public:
    explicit tdma_scheduler(const tdma_config& cfg = {});

    [[nodiscard]] const tdma_config& parameters() const { return cfg_; }

    /// Airtime of one tag's slot (query + turnaround + burst + guard).
    [[nodiscard]] double slot_duration_s() const;

    /// Builds one polling cycle over `tag_ids`.
    [[nodiscard]] std::vector<tdma_slot> build_cycle(
        const std::vector<std::uint32_t>& tag_ids) const;

    /// Weighted cycle for degraded-mode scheduling: each tag appears
    /// `slots` times, interleaved (see interleave_shares) so a tag holding
    /// reallocated slots spreads across the cycle instead of monopolizing a
    /// contiguous stretch — which is what keeps per-round access latency
    /// bounded for every healthy tag.
    [[nodiscard]] std::vector<tdma_slot> build_cycle(
        const std::vector<slot_share>& shares) const;

    /// Round-robin interleaving of weighted shares: repeatedly sweeps the
    /// share list in order, emitting one slot per tag with allocation left,
    /// until every share is exhausted. Deterministic in the input order (the
    /// caller rotates the list for fairness across rounds).
    [[nodiscard]] static std::vector<std::uint32_t> interleave_shares(
        const std::vector<slot_share>& shares);

    /// Steady-state metrics for `tag_count` tags sharing the channel.
    [[nodiscard]] tdma_metrics metrics(std::size_t tag_count) const;

private:
    tdma_config cfg_;
};

} // namespace mmtag::mac
