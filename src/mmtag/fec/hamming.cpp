#include "mmtag/fec/hamming.hpp"

#include <cstddef>
#include <stdexcept>

namespace mmtag::fec {

namespace {

// Codeword layout [p1 p2 d1 p3 d2 d3 d4] with parity bits at positions
// 1, 2, 4 (1-indexed), the classic systematic-ish Hamming arrangement.
constexpr std::size_t block_n = 7;
constexpr std::size_t block_k = 4;

void encode_block(const std::uint8_t* data, std::uint8_t* code)
{
    const std::uint8_t d1 = data[0], d2 = data[1], d3 = data[2], d4 = data[3];
    code[2] = d1;
    code[4] = d2;
    code[5] = d3;
    code[6] = d4;
    code[0] = static_cast<std::uint8_t>(d1 ^ d2 ^ d4); // p1 covers 1,3,5,7
    code[1] = static_cast<std::uint8_t>(d1 ^ d3 ^ d4); // p2 covers 2,3,6,7
    code[3] = static_cast<std::uint8_t>(d2 ^ d3 ^ d4); // p3 covers 4,5,6,7
}

} // namespace

std::vector<std::uint8_t> hamming74_encode(std::span<const std::uint8_t> bits)
{
    std::vector<std::uint8_t> padded(bits.begin(), bits.end());
    while (padded.size() % block_k != 0) padded.push_back(0);
    std::vector<std::uint8_t> out(padded.size() / block_k * block_n);
    for (std::size_t block = 0; block < padded.size() / block_k; ++block) {
        encode_block(&padded[block * block_k], &out[block * block_n]);
    }
    return out;
}

std::vector<std::uint8_t> hamming74_decode(std::span<const std::uint8_t> bits,
                                           std::size_t* corrected_errors)
{
    if (bits.size() % block_n != 0) {
        throw std::invalid_argument("hamming74_decode: length must be a multiple of 7");
    }
    std::size_t corrections = 0;
    std::vector<std::uint8_t> out;
    out.reserve(bits.size() / block_n * block_k);
    for (std::size_t block = 0; block < bits.size() / block_n; ++block) {
        std::uint8_t c[block_n];
        for (std::size_t i = 0; i < block_n; ++i) c[i] = bits[block * block_n + i] & 1u;
        const std::uint8_t s1 = static_cast<std::uint8_t>(c[0] ^ c[2] ^ c[4] ^ c[6]);
        const std::uint8_t s2 = static_cast<std::uint8_t>(c[1] ^ c[2] ^ c[5] ^ c[6]);
        const std::uint8_t s3 = static_cast<std::uint8_t>(c[3] ^ c[4] ^ c[5] ^ c[6]);
        const unsigned syndrome = static_cast<unsigned>(s1 | (s2 << 1) | (s3 << 2));
        if (syndrome != 0) {
            c[syndrome - 1] ^= 1u;
            ++corrections;
        }
        out.push_back(c[2]);
        out.push_back(c[4]);
        out.push_back(c[5]);
        out.push_back(c[6]);
    }
    if (corrected_errors != nullptr) *corrected_errors = corrections;
    return out;
}

} // namespace mmtag::fec
