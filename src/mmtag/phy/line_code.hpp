// Backscatter line codes: FM0 and Miller-M subcarrier encoding.
//
// Plain NRZ load modulation concentrates its spectrum at DC — exactly where
// the AP's self-interference lives. FM0 guarantees a transition at every bit
// boundary (spectral null at DC); Miller-M further multiplies each bit by M
// subcarrier cycles, moving the main lobe to M x bit rate, which lets even a
// simple DC notch coexist with the tag's spectrum. This is the classic
// backscatter trade: M x more switch transitions (energy) for interference
// headroom. The R15 bench quantifies both sides.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mmtag/common.hpp"

namespace mmtag::phy {

enum class line_code {
    nrz,      ///< plain antipodal bits, 1 chip/bit
    fm0,      ///< bi-phase space: invert at every boundary, mid-bit for 0
    miller2,  ///< Miller baseband x 2 subcarrier cycles (4 chips/bit)
    miller4,  ///< Miller baseband x 4 subcarrier cycles (8 chips/bit)
};

[[nodiscard]] const char* line_code_name(line_code code);

/// Chips produced per data bit.
[[nodiscard]] std::size_t chips_per_bit(line_code code);

/// Encodes bits (0/1) into +-1 chips. FM0/Miller are stateful across bits;
/// the encoder starts from the conventional +1 phase.
[[nodiscard]] std::vector<int> encode_line_code(std::span<const std::uint8_t> bits,
                                                line_code code);

/// Decodes +-1 (or soft, sign-meaningful) chips back into bits. The chip
/// stream must be bit-aligned and of whole-bit length. Decoding correlates
/// each bit window against both transmit hypotheses given the encoder state,
/// so isolated chip errors do not propagate.
[[nodiscard]] std::vector<std::uint8_t> decode_line_code(std::span<const double> chips,
                                                         line_code code);

/// Fraction of the coded waveform's power within +-`band_fraction` of DC
/// (band_fraction relative to the chip rate). The figure of merit the DC
/// notch cares about.
[[nodiscard]] double dc_power_fraction(line_code code, double band_fraction,
                                       std::size_t probe_bits = 4096,
                                       std::uint64_t seed = 1);

/// Average switch transitions per data bit for random data (energy cost).
[[nodiscard]] double transitions_per_bit(line_code code, std::size_t probe_bits = 4096,
                                         std::uint64_t seed = 2);

} // namespace mmtag::phy
