
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_addressable_tag.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_addressable_tag.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_addressable_tag.cpp.o.d"
  "/root/repo/tests/test_antenna.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_antenna.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_antenna.cpp.o.d"
  "/root/repo/tests/test_ap.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_ap.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_ap.cpp.o.d"
  "/root/repo/tests/test_carrier_equalizer.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_carrier_equalizer.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_carrier_equalizer.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_command_channel.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_command_channel.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_command_channel.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_crc_scrambler.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_crc_scrambler.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_crc_scrambler.cpp.o.d"
  "/root/repo/tests/test_estimators.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_estimators.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_estimators.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fec_codes.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_fec_codes.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_fec_codes.cpp.o.d"
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_fir.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_fir.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_fir.cpp.o.d"
  "/root/repo/tests/test_goertzel_presets.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_goertzel_presets.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_goertzel_presets.cpp.o.d"
  "/root/repo/tests/test_iir.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_iir.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_iir.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_inventory_sample_level.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_inventory_sample_level.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_inventory_sample_level.cpp.o.d"
  "/root/repo/tests/test_line_code.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_line_code.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_line_code.cpp.o.d"
  "/root/repo/tests/test_link_matrix.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_link_matrix.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_link_matrix.cpp.o.d"
  "/root/repo/tests/test_mac.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_mac.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_mac.cpp.o.d"
  "/root/repo/tests/test_modulation.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_modulation.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_modulation.cpp.o.d"
  "/root/repo/tests/test_phy_frame.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_phy_frame.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_phy_frame.cpp.o.d"
  "/root/repo/tests/test_pn_sequence.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_pn_sequence.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_pn_sequence.cpp.o.d"
  "/root/repo/tests/test_psd_blockage.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_psd_blockage.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_psd_blockage.cpp.o.d"
  "/root/repo/tests/test_pulse_timing.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_pulse_timing.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_pulse_timing.cpp.o.d"
  "/root/repo/tests/test_resampler_nco.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_resampler_nco.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_resampler_nco.cpp.o.d"
  "/root/repo/tests/test_rf_models.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_rf_models.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_rf_models.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_switch_detector.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_switch_detector.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_switch_detector.cpp.o.d"
  "/root/repo/tests/test_tag.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_tag.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_tag.cpp.o.d"
  "/root/repo/tests/test_window.cpp" "tests/CMakeFiles/mmtag_tests.dir/test_window.cpp.o" "gcc" "tests/CMakeFiles/mmtag_tests.dir/test_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mmtag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
